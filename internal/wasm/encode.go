package wasm

import (
	"fmt"
	"math"
)

// Binary encoding of modules. The format follows the WebAssembly 1.0
// binary format plus the memory64 limits flag; Cage instructions encode
// as 0xE0 followed by a sub-opcode and, for the segment family, a ULEB
// static offset.

// Section identifiers.
const (
	secType     = 1
	secImport   = 2
	secFunction = 3
	secTable    = 4
	secMemory   = 5
	secGlobal   = 6
	secExport   = 7
	secStart    = 8
	secElem     = 9
	secCode     = 10
	secData     = 11
)

var magicHeader = []byte{0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00}

// Encode serializes the module to the binary format.
func Encode(m *Module) ([]byte, error) {
	out := append([]byte{}, magicHeader...)

	section := func(id byte, body []byte) {
		out = append(out, id)
		out = appendULEB(out, uint64(len(body)))
		out = append(out, body...)
	}

	if len(m.Types) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Types)))
		for _, t := range m.Types {
			b = append(b, 0x60)
			b = appendULEB(b, uint64(len(t.Params)))
			for _, p := range t.Params {
				b = append(b, byte(p))
			}
			b = appendULEB(b, uint64(len(t.Results)))
			for _, r := range t.Results {
				b = append(b, byte(r))
			}
		}
		section(secType, b)
	}

	if len(m.Imports) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Imports)))
		for _, im := range m.Imports {
			b = appendULEB(b, uint64(len(im.Module)))
			b = append(b, im.Module...)
			b = appendULEB(b, uint64(len(im.Name)))
			b = append(b, im.Name...)
			b = append(b, 0x00) // func import
			b = appendULEB(b, uint64(im.TypeIdx))
		}
		section(secImport, b)
	}

	if len(m.Funcs) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			b = appendULEB(b, uint64(f.TypeIdx))
		}
		section(secFunction, b)
	}

	if len(m.Tables) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Tables)))
		for _, t := range m.Tables {
			b = append(b, 0x70) // funcref
			b = appendLimits(b, t.Limits, false)
		}
		section(secTable, b)
	}

	if len(m.Mems) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Mems)))
		for _, mem := range m.Mems {
			b = appendLimits(b, mem.Limits, mem.Memory64)
		}
		section(secMemory, b)
	}

	if len(m.Globals) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Globals)))
		for _, g := range m.Globals {
			b = append(b, byte(g.Type.Type))
			if g.Type.Mutable {
				b = append(b, 1)
			} else {
				b = append(b, 0)
			}
			var err error
			b, err = appendConstExpr(b, g.Type.Type, g.Init)
			if err != nil {
				return nil, err
			}
		}
		section(secGlobal, b)
	}

	if len(m.Exports) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Exports)))
		for _, e := range m.Exports {
			b = appendULEB(b, uint64(len(e.Name)))
			b = append(b, e.Name...)
			b = append(b, byte(e.Kind))
			b = appendULEB(b, uint64(e.Idx))
		}
		section(secExport, b)
	}

	if m.Start != nil {
		var b []byte
		b = appendULEB(b, uint64(*m.Start))
		section(secStart, b)
	}

	if len(m.Elems) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Elems)))
		for _, e := range m.Elems {
			b = append(b, 0x00) // active, table 0
			b = append(b, byte(OpI32Const))
			b = appendSLEB(b, int64(int32(e.Offset)))
			b = append(b, byte(OpEnd))
			b = appendULEB(b, uint64(len(e.Funcs)))
			for _, f := range e.Funcs {
				b = appendULEB(b, uint64(f))
			}
		}
		section(secElem, b)
	}

	if len(m.Funcs) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Funcs)))
		for _, f := range m.Funcs {
			body, err := encodeBody(&f)
			if err != nil {
				return nil, err
			}
			b = appendULEB(b, uint64(len(body)))
			b = append(b, body...)
		}
		section(secCode, b)
	}

	if len(m.Datas) > 0 {
		var b []byte
		b = appendULEB(b, uint64(len(m.Datas)))
		for _, d := range m.Datas {
			b = append(b, 0x00) // active, memory 0
			// memory64 uses an i64 offset expression.
			b = append(b, byte(OpI64Const))
			b = appendSLEB(b, int64(d.Offset))
			b = append(b, byte(OpEnd))
			b = appendULEB(b, uint64(len(d.Bytes)))
			b = append(b, d.Bytes...)
		}
		section(secData, b)
	}

	return out, nil
}

func appendLimits(b []byte, l Limits, mem64 bool) []byte {
	flags := byte(0)
	if l.HasMax {
		flags |= 0x01
	}
	if mem64 {
		flags |= 0x04 // memory64 proposal flag
	}
	b = append(b, flags)
	b = appendULEB(b, l.Min)
	if l.HasMax {
		b = appendULEB(b, l.Max)
	}
	return b
}

func appendConstExpr(b []byte, t ValType, bits uint64) ([]byte, error) {
	switch t {
	case I32:
		b = append(b, byte(OpI32Const))
		b = appendSLEB(b, int64(int32(bits)))
	case I64:
		b = append(b, byte(OpI64Const))
		b = appendSLEB(b, int64(bits))
	case F32:
		b = append(b, byte(OpF32Const))
		var raw [4]byte
		putU32(raw[:], uint32(bits))
		b = append(b, raw[:]...)
	case F64:
		b = append(b, byte(OpF64Const))
		var raw [8]byte
		putU64(raw[:], bits)
		b = append(b, raw[:]...)
	default:
		return nil, fmt.Errorf("wasm: cannot encode const of type %v", t)
	}
	return append(b, byte(OpEnd)), nil
}

func putU32(dst []byte, v uint32) {
	dst[0], dst[1], dst[2], dst[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putU64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * i))
	}
}

func encodeBody(f *Function) ([]byte, error) {
	var b []byte
	// Locals: run-length encoded.
	type run struct {
		count uint32
		t     ValType
	}
	var runs []run
	for _, l := range f.Locals {
		if len(runs) > 0 && runs[len(runs)-1].t == l {
			runs[len(runs)-1].count++
		} else {
			runs = append(runs, run{1, l})
		}
	}
	b = appendULEB(b, uint64(len(runs)))
	for _, r := range runs {
		b = appendULEB(b, uint64(r.count))
		b = append(b, byte(r.t))
	}
	for _, in := range f.Body {
		var err error
		b, err = appendInstr(b, in)
		if err != nil {
			return nil, err
		}
	}
	// Bodies must be OpEnd-terminated; add one if the builder omitted it.
	if n := len(f.Body); n == 0 || f.Body[n-1].Op != OpEnd {
		b = append(b, byte(OpEnd))
	}
	return b, nil
}

func appendInstr(b []byte, in Instr) ([]byte, error) {
	op := in.Op
	switch {
	case op == OpMemoryCopy:
		b = append(b, 0xFC)
		b = appendULEB(b, 0x0A)
		return append(b, 0x00, 0x00), nil // src, dst memory indices
	case op == OpMemoryFill:
		b = append(b, 0xFC)
		b = appendULEB(b, 0x0B)
		return append(b, 0x00), nil
	case op.IsCage():
		b = append(b, 0xE0, byte(op&0xFF))
		switch op {
		case OpSegmentNew, OpSegmentSetTag, OpSegmentFree:
			b = appendULEB(b, in.Offset)
		}
		return b, nil
	case op > 0xFF:
		return nil, fmt.Errorf("wasm: cannot encode opcode %v", op)
	}
	b = append(b, byte(op))
	switch op {
	case OpBlock, OpLoop, OpIf:
		b = appendSLEB(b, int64(in.Block))
	case OpBr, OpBrIf, OpCall, OpLocalGet, OpLocalSet, OpLocalTee,
		OpGlobalGet, OpGlobalSet:
		b = appendULEB(b, in.X)
	case OpBrTable:
		b = appendULEB(b, uint64(len(in.Targets)))
		for _, t := range in.Targets {
			b = appendULEB(b, uint64(t))
		}
		b = appendULEB(b, in.X) // default target
	case OpCallIndirect:
		b = appendULEB(b, in.X) // type index
		b = append(b, 0x00)     // table 0
	case OpMemorySize, OpMemoryGrow:
		b = append(b, 0x00)
	case OpI32Const:
		b = appendSLEB(b, int64(int32(in.X)))
	case OpI64Const:
		b = appendSLEB(b, int64(in.X))
	case OpF32Const:
		var raw [4]byte
		putU32(raw[:], math.Float32bits(float32(in.F)))
		b = append(b, raw[:]...)
	case OpF64Const:
		var raw [8]byte
		putU64(raw[:], math.Float64bits(in.F))
		b = append(b, raw[:]...)
	default:
		if op.isMemAccess() {
			b = appendULEB(b, in.X) // alignment
			b = appendULEB(b, in.Offset)
		}
	}
	return b, nil
}
