package serve

import (
	"net/http"
	"testing"

	"cage"
)

// TestHardenedTenant pins the per-tenant Spectre-hardened path: a
// tenant whose policy sets SpectreHardened gets the same answers as
// everyone else from the same registered module, pays the mitigation's
// fence/BTB-flush events on top, and is labeled hardened in /v1/stats.
func TestHardenedTenant(t *testing.T) {
	hardened := QuotaPolicy{SpectreHardened: true}
	ts, srv := newTestServer(t, Options{
		Config:     cage.FullHardening(),
		ConfigName: "full",
		Tenants:    map[string]QuotaPolicy{"spectre": hardened},
	})
	if srv.hardEng == nil {
		t.Fatal("server with a hardened tenant built no hardened engine")
	}

	up := uploadSource(t, ts, "plain", guestSource)
	req := InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{20, 22}}

	resp, plain, _ := invoke(t, ts, "plain", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain invoke: status %d", resp.StatusCode)
	}
	resp, hard, _ := invoke(t, ts, "spectre", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hardened invoke: status %d", resp.StatusCode)
	}

	// Identical answers, more expensive accounting.
	if len(hard.Values) != 1 || hard.Values[0] != 42 {
		t.Fatalf("hardened values %v, want [42]", hard.Values)
	}
	if plain.Values[0] != hard.Values[0] {
		t.Errorf("answers diverge: plain %v, hardened %v", plain.Values, hard.Values)
	}
	if hard.Fuel <= plain.Fuel {
		t.Errorf("hardened fuel %d not above plain %d", hard.Fuel, plain.Fuel)
	}
	if hard.Events["fence"] == 0 || hard.Events["btb_flush"] == 0 {
		t.Errorf("hardened events %v lack fence/btb_flush", hard.Events)
	}
	if plain.Events["fence"] != 0 || plain.Events["btb_flush"] != 0 {
		t.Errorf("plain tenant charged mitigation events: %v", plain.Events)
	}

	stats := srv.StatsSnapshot()
	if !stats.Tenants["spectre"].Hardened {
		t.Error("stats do not label the hardened tenant")
	}
	if stats.Tenants["plain"].Hardened {
		t.Error("stats label the plain tenant hardened")
	}
}

// TestHardenedTenantSnapshotPerEngine pins the per-engine snapshot
// story: a module registered with ?init= builds one post-init image on
// the base engine and a separate one on the hardened engine, and both
// serve correct post-init state.
func TestHardenedTenantSnapshotPerEngine(t *testing.T) {
	const src = `
extern char* malloc(long n);
long* cell;
long setup() { cell = (long*)malloc(8); *cell = 41; return 0; }
long bump(long d) { *cell = *cell + d; return *cell; }
`
	hardened := QuotaPolicy{SpectreHardened: true}
	ts, srv := newTestServer(t, Options{
		Config:     cage.FullHardening(),
		ConfigName: "full",
		Tenants:    map[string]QuotaPolicy{"spectre": hardened},
	})

	var up UploadResponse
	resp := postJSON(t, ts, "/v1/modules?init=setup", "plain", []byte(src), &up)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	req := InvokeRequest{Module: up.Module, Function: "bump", Args: []uint64{1}}

	for _, tenant := range []string{"plain", "spectre"} {
		resp, ok, eb := invoke(t, ts, tenant, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s invoke: status %d (%+v)", tenant, resp.StatusCode, eb)
		}
		// Every invocation forks the frozen post-init image, so each
		// sees *cell == 41 and returns 42 — on either engine.
		if len(ok.Values) != 1 || ok.Values[0] != 42 {
			t.Fatalf("%s: values %v, want [42]", tenant, ok.Values)
		}
	}

	entry, found := srv.reg.lookup(up.Module)
	if !found {
		t.Fatal("module vanished from the registry")
	}
	entry.snapMu.Lock()
	built := len(entry.snapDone)
	entry.snapMu.Unlock()
	if built != 2 {
		t.Errorf("post-init snapshots built on %d engines, want 2 (base + hardened)", built)
	}
}
