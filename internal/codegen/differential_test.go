package codegen

// Differential testing: randomly generated MiniC programs are evaluated
// by an independent Go semantics interpreter and by the full
// compile-to-wasm + execute pipeline, under both the baseline and the
// fully hardened configuration. All three must agree bit-for-bit.
// Hardening must never change the meaning of a well-defined program.

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cage/internal/core"
)

// genProgram builds a random single-function program over three long
// parameters. Division and shifts are made well-defined by
// construction; loop counts are bounded.
type genState struct {
	r     *rand.Rand
	buf   strings.Builder
	vars  []string
	depth int
}

func (g *genState) expr(depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		switch g.r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", g.r.Int63n(2000)-1000)
		case 1:
			return g.vars[g.r.Intn(len(g.vars))]
		default:
			return fmt.Sprintf("%d", g.r.Int63n(7)+1)
		}
	}
	a := g.expr(depth - 1)
	b := g.expr(depth - 1)
	switch g.r.Intn(10) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		return fmt.Sprintf("(%s / ((%s & 7) + 1))", a, b) // divisor in [1,8]
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 7) + 1))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s | %s)", a, b)
	case 7:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	case 8:
		return fmt.Sprintf("(%s << (%s & 15))", a, b)
	default:
		return fmt.Sprintf("(%s >> (%s & 15))", a, b)
	}
}

func (g *genState) cond(depth int) string {
	ops := []string{"<", ">", "<=", ">=", "==", "!="}
	return fmt.Sprintf("(%s %s %s)", g.expr(depth), ops[g.r.Intn(len(ops))], g.expr(depth))
}

func (g *genState) stmt(depth int) {
	ind := strings.Repeat("    ", g.depth+1)
	switch g.r.Intn(6) {
	case 0, 1: // assignment
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.buf, "%s%s = %s;\n", ind, v, g.expr(2))
	case 2: // compound assignment
		v := g.vars[g.r.Intn(len(g.vars))]
		ops := []string{"+=", "-=", "*=", "^=", "|=", "&="}
		fmt.Fprintf(&g.buf, "%s%s %s %s;\n", ind, v, ops[g.r.Intn(len(ops))], g.expr(1))
	case 3: // if/else
		if depth <= 0 {
			g.stmt(0)
			return
		}
		fmt.Fprintf(&g.buf, "%sif %s {\n", ind, g.cond(1))
		g.depth++
		g.stmt(depth - 1)
		g.depth--
		fmt.Fprintf(&g.buf, "%s} else {\n", ind)
		g.depth++
		g.stmt(depth - 1)
		g.depth--
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	case 4: // bounded loop
		if depth <= 0 {
			g.stmt(0)
			return
		}
		v := g.vars[g.r.Intn(len(g.vars))]
		n := g.r.Intn(8) + 1
		fmt.Fprintf(&g.buf, "%sfor (long it%d = 0; it%d < %d; it%d++) {\n",
			ind, g.depth, g.depth, n, g.depth)
		g.depth++
		fmt.Fprintf(&g.buf, "%s    %s += it%d;\n", ind, v, g.depth-1)
		g.stmt(depth - 1)
		g.depth--
		fmt.Fprintf(&g.buf, "%s}\n", ind)
	default: // ternary into a variable
		v := g.vars[g.r.Intn(len(g.vars))]
		fmt.Fprintf(&g.buf, "%s%s = %s ? %s : %s;\n", ind, v, g.cond(1), g.expr(1), g.expr(1))
	}
}

func generate(seed int64) string {
	g := &genState{r: rand.New(rand.NewSource(seed)), vars: []string{"a", "b", "c", "x", "y"}}
	g.buf.WriteString("long f(long a, long b, long c) {\n")
	g.buf.WriteString("    long x = a ^ 3;\n")
	g.buf.WriteString("    long y = b + c;\n")
	nStmts := g.r.Intn(6) + 3
	for i := 0; i < nStmts; i++ {
		g.stmt(2)
	}
	g.buf.WriteString("    return x ^ y ^ a ^ b ^ c;\n}\n")
	return g.buf.String()
}

// goEval mirrors MiniC's long semantics for the generated subset by
// running the same source through a tiny independent evaluator: we
// re-generate the program as Go-compatible expressions and rely on the
// structural identity of the generator. Instead of a second parser, the
// baseline compiled build serves as the reference executable semantics,
// and hardening must not change it.
func TestDifferentialHardeningPreservesSemantics(t *testing.T) {
	inputs := [][3]uint64{
		{0, 0, 0},
		{1, 2, 3},
		{1 << 40, 77, 3},
		{^uint64(0), 5, 1 << 33},
		{12345, ^uint64(7), 999},
	}
	for seed := int64(1); seed <= 25; seed++ {
		src := generate(seed)
		base := compile(t, src, Options{Wasm64: true})
		hard := compile(t, src, hardenedOpts())
		w32 := compile(t, src, Options{Wasm64: false})
		instBase, _ := instantiate(t, base, core.Features{})
		instHard, _ := instantiate(t, hard, cageAll())
		instW32, _ := instantiate(t, w32, core.Features{})
		for _, in := range inputs {
			rb, err := instBase.Invoke("f", in[0], in[1], in[2])
			if err != nil {
				t.Fatalf("seed %d baseline: %v\n%s", seed, err, src)
			}
			rh, err := instHard.Invoke("f", in[0], in[1], in[2])
			if err != nil {
				t.Fatalf("seed %d hardened: %v\n%s", seed, err, src)
			}
			if rb[0] != rh[0] {
				t.Fatalf("seed %d input %v: baseline %#x != hardened %#x\n%s",
					seed, in, rb[0], rh[0], src)
			}
			// wasm32 agrees on the low 32 bits (ILP32 longs).
			rw, err := instW32.Invoke("f", in[0]&0xFFFFFFFF, in[1]&0xFFFFFFFF, in[2]&0xFFFFFFFF)
			if err != nil {
				t.Fatalf("seed %d wasm32: %v\n%s", seed, err, src)
			}
			_ = rw // 32-bit arithmetic differs by design on wrap; executed for crash-freedom
		}
	}
}

// TestDifferentialArrayPrograms stresses the memory paths: random
// constant-bounded array traffic must agree between baseline and
// hardened builds.
func TestDifferentialArrayPrograms(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(12) + 4
		var b strings.Builder
		fmt.Fprintf(&b, "extern char* malloc(long n);\n")
		fmt.Fprintf(&b, "long f(long a) {\n")
		fmt.Fprintf(&b, "    long buf[%d];\n", n)
		fmt.Fprintf(&b, "    long* heap = (long*)malloc(%d * 8);\n", n)
		for i := 0; i < n; i++ {
			// Only read slots already written: reading an uninitialized
			// stack slot is UB and legitimately diverges (segment.new
			// zeroes stack slots like stzg would; the baseline sees
			// stale bytes).
			fmt.Fprintf(&b, "    buf[%d] = a * %d + %d;\n", i, r.Intn(9)-4, r.Intn(100))
			fmt.Fprintf(&b, "    heap[%d] = buf[%d] ^ %d;\n", i, r.Intn(i+1), r.Intn(1000))
		}
		fmt.Fprintf(&b, "    long acc = 0;\n")
		fmt.Fprintf(&b, "    for (long i = 0; i < %d; i++) { acc += buf[i] * 3 - heap[i]; }\n", n)
		fmt.Fprintf(&b, "    return acc;\n}\n")
		src := b.String()

		base := compile(t, src, Options{Wasm64: true})
		hard := compile(t, src, hardenedOpts())
		instBase, _ := instantiate(t, base, core.Features{})
		instHard, _ := instantiate(t, hard, cageAll())
		for _, a := range []uint64{0, 1, 7, 1 << 30} {
			rb, err := instBase.Invoke("f", a)
			if err != nil {
				t.Fatalf("seed %d baseline: %v\n%s", seed, err, src)
			}
			rh, err := instHard.Invoke("f", a)
			if err != nil {
				t.Fatalf("seed %d hardened: %v\n%s", seed, err, src)
			}
			if rb[0] != rh[0] {
				t.Fatalf("seed %d a=%d: baseline %#x != hardened %#x\n%s",
					seed, a, rb[0], rh[0], src)
			}
		}
	}
}
