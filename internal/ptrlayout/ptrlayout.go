package ptrlayout

// Field boundaries shared by every layout.
const (
	// AddressBits is the number of low bits that index memory (48-bit VA).
	AddressBits = 48
	// AddressMask extracts the virtual address portion of a pointer.
	AddressMask = (uint64(1) << AddressBits) - 1
	// KernelBit selects kernel (1) vs user (0) addresses.
	KernelBit = 55
	// MTETagShift is the bit position of the 4-bit MTE allocation tag.
	MTETagShift = 56
	// MTETagBits is the width of the MTE allocation tag.
	MTETagBits = 4
	// MTETagMask covers bits 59..56.
	MTETagMask = uint64(0xF) << MTETagShift
)

// Layout describes which upper-pointer bits carry a PAC signature for a
// given hardware/OS configuration.
type Layout struct {
	// Name identifies the configuration, e.g. "linux+mte+pac".
	Name string
	// MTE reports whether bits 59..56 are reserved for the memory tag.
	MTE bool
	// PACMask has a 1 in every bit position that carries PAC signature
	// material.
	PACMask uint64
}

// Predefined layouts matching paper Fig. 3.
var (
	// NoExtension uses no upper-bit metadata at all.
	NoExtension = Layout{Name: "none", MTE: false, PACMask: 0}

	// MTEOnly reserves only the tag nibble.
	MTEOnly = Layout{Name: "mte", MTE: true, PACMask: 0}

	// PACOnly places the signature in bits 63..56 and 54..48 (15 bits,
	// TBI disabled), the widest Linux configuration without MTE.
	PACOnly = Layout{
		Name:    "pac",
		MTE:     false,
		PACMask: (uint64(0xFF) << 56) | (uint64(0x7F) << 48),
	}

	// MTEAndPAC is the Linux layout with both features: PAC occupies bits
	// 63..60 and 54..49 (10 bits); MTE keeps 59..56; bit 55 stays the
	// kernel/user selector; bits 48 remains address material per TBI rules.
	MTEAndPAC = Layout{
		Name:    "mte+pac",
		MTE:     true,
		PACMask: (uint64(0xF) << 60) | (uint64(0x3F) << 49),
	}
)

// Address returns the 48-bit virtual-address portion of p.
func Address(p uint64) uint64 { return p & AddressMask }

// IsKernel reports whether p addresses kernel space (bit 55 set).
func IsKernel(p uint64) bool { return p&(1<<KernelBit) != 0 }

// Tag extracts the 4-bit MTE allocation tag from p.
func Tag(p uint64) uint8 { return uint8((p & MTETagMask) >> MTETagShift) }

// WithTag returns p with its MTE tag nibble replaced by tag.
func WithTag(p uint64, tag uint8) uint64 {
	return (p &^ MTETagMask) | (uint64(tag&0xF) << MTETagShift)
}

// StripTag clears the MTE tag nibble of p.
func StripTag(p uint64) uint64 { return p &^ MTETagMask }

// PACBits returns how many signature bits layout l provides.
func (l Layout) PACBits() int {
	n := 0
	for m := l.PACMask; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Insert scatters the low PACBits() bits of sig into the PAC field of p.
func (l Layout) Insert(p, sig uint64) uint64 {
	out := p &^ l.PACMask
	bit := 0
	for i := 0; i < 64; i++ {
		if l.PACMask&(uint64(1)<<i) != 0 {
			if sig&(uint64(1)<<bit) != 0 {
				out |= uint64(1) << i
			}
			bit++
		}
	}
	return out
}

// Extract gathers the PAC field of p into a compact value (inverse of
// Insert).
func (l Layout) Extract(p uint64) uint64 {
	var sig uint64
	bit := 0
	for i := 0; i < 64; i++ {
		if l.PACMask&(uint64(1)<<i) != 0 {
			if p&(uint64(1)<<i) != 0 {
				sig |= uint64(1) << bit
			}
			bit++
		}
	}
	return sig
}

// Canonical returns p with all metadata bits cleared/sign-extended so the
// result is a plain user-space pointer: the address bits survive, every
// PAC and tag bit is zeroed.
func (l Layout) Canonical(p uint64) uint64 {
	p &^= l.PACMask
	if l.MTE {
		p = StripTag(p)
	}
	return p & ((1 << (KernelBit + 1)) - 1) & AddressMask
}
