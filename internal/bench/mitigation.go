package bench

import (
	"encoding/json"
	"fmt"
	"io"

	"cage/internal/arch"
	"cage/internal/exec"
	"cage/internal/polybench"
)

// Mitigation benchmark: prices the Spectre-hardened preset against
// full. The hardened lowering is bit-identical to full in semantics —
// same results, same traps — and differs only in the timing model
// (fence events at indirect branches and returns, BTB flushes at
// sandbox transitions), so the comparison below is a pure mitigation
// tax: fuel and modeled cycles, never answers.

// MitigationVariants returns the full-Cage variant and its
// Spectre-hardened twin. Kept separate from Table3Variants, whose six
// paper-order rows are pinned by tests and by the Fig. 14 layout.
func MitigationVariants() (full, hardened Variant) {
	for _, v := range Table3Variants() {
		if v.Name == "Cage" {
			full = v
		}
	}
	hardened = full
	hardened.Name = "Cage-hardened"
	hardened.Features.SpectreHarden = true
	return full, hardened
}

// MitigationKernel is one kernel's full-vs-hardened comparison.
type MitigationKernel struct {
	Kernel   string  `json:"kernel"`
	N        int     `json:"n"`
	Checksum float64 `json:"checksum"`
	// ResultsIdentical records the acceptance criterion: the hardened
	// run returned bit-identical values to the full run.
	ResultsIdentical bool   `json:"results_identical"`
	FullFuel         uint64 `json:"full_fuel"`
	HardenedFuel     uint64 `json:"hardened_fuel"`
	// FuelTaxPct is the relative fuel increase hardened pays.
	FuelTaxPct float64 `json:"fuel_tax_pct"`
	// FenceEvents and BTBFlushEvents are the mitigation's own events —
	// the entire difference between the two runs.
	FenceEvents    uint64 `json:"fence_events"`
	BTBFlushEvents uint64 `json:"btb_flush_events"`
	// CycleTaxPct maps each modeled core to the relative cycle increase;
	// the fence is cheap on the little core and dear on the big ones, so
	// the tax is core-dependent even at a fixed event count.
	CycleTaxPct map[string]float64 `json:"cycle_tax_pct"`
}

// MitigationRecord is the cage-bench -mitigation JSON record.
type MitigationRecord struct {
	Kernels []MitigationKernel `json:"kernels"`
	// Scenarios is the adversary verdict table (schema cage-adversary/v1)
	// covering the scenario corpus under every preset. It is attached by
	// cmd/cage-bench as pre-encoded JSON: this package cannot import
	// internal/adversary, which depends on the root package that the
	// root benchmark suite compiles together with this one.
	Scenarios json.RawMessage `json:"scenarios,omitempty"`
}

// MeasureMitigation runs every PolyBench kernel under full and hardened
// and reports the per-kernel tax. quick selects the test problem sizes.
func MeasureMitigation(quick bool) (*MitigationRecord, error) {
	fullV, hardV := MitigationVariants()
	rec := &MitigationRecord{}
	for _, k := range polybench.Kernels() {
		n := k.BenchN
		if quick {
			n = k.TestN
		}
		// Both variants compile identically; hardening is lowering-time.
		m, err := polybench.Build(k, fullV.Compile)
		if err != nil {
			return nil, err
		}
		run := func(v Variant) ([]uint64, *arch.Counter, error) {
			var ctr arch.Counter
			inst, _, err := polybench.Instantiate(m, v.Features, &ctr)
			if err != nil {
				return nil, nil, err
			}
			defer inst.Close()
			res, err := inst.Invoke("run", uint64(n))
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s/%s: %w", k.Name, v.Name, err)
			}
			return res, &ctr, nil
		}
		fullRes, fullCtr, err := run(fullV)
		if err != nil {
			return nil, err
		}
		hardRes, hardCtr, err := run(hardV)
		if err != nil {
			return nil, err
		}

		identical := len(fullRes) == len(hardRes)
		for i := 0; identical && i < len(fullRes); i++ {
			identical = fullRes[i] == hardRes[i]
		}
		mk := MitigationKernel{
			Kernel: k.Name, N: n,
			Checksum:         exec.F64Val(fullRes[0]),
			ResultsIdentical: identical,
			FullFuel:         fullCtr.Total(),
			HardenedFuel:     hardCtr.Total(),
			FenceEvents:      hardCtr.Get(arch.EvFence),
			BTBFlushEvents:   hardCtr.Get(arch.EvBTBFlush),
			CycleTaxPct:      make(map[string]float64),
		}
		if mk.FullFuel > 0 {
			mk.FuelTaxPct = 100 * (float64(mk.HardenedFuel)/float64(mk.FullFuel) - 1)
		}
		for _, c := range arch.Cores() {
			if base := fullCtr.Cycles(c); base > 0 {
				mk.CycleTaxPct[c.Name] = 100 * (hardCtr.Cycles(c)/base - 1)
			}
		}
		rec.Kernels = append(rec.Kernels, mk)
	}
	return rec, nil
}

// WriteMitigationJSON emits a document carrying only the mitigation
// record — the fast path for regenerating BENCH_mitigation.json.
// scenarios, if non-nil, is the pre-encoded adversary verdict table.
func WriteMitigationJSON(w io.Writer, quick bool, scenarios json.RawMessage) error {
	rec, err := MeasureMitigation(quick)
	if err != nil {
		return err
	}
	rec.Scenarios = scenarios
	rep := JSONReport{Schema: JSONSchema, Quick: quick, Mitigation: rec}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
