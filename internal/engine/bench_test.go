package engine

import (
	"context"
	"testing"
)

// The fast-path benchmarks double as regression gates for the two
// properties the scaling work promises: a cache hit and a pool
// checkout/checkin pair take no locks and allocate nothing.

type benchInst struct{}

func (benchInst) Reset(seed uint64) error { return nil }
func (benchInst) Close() error            { return nil }

func benchCache(b *testing.B, parallel bool) {
	var c Cache[int]
	k := KeyOfString("bench", "hit")
	if _, err := c.GetOrBuild(k, func() (int, error) { return 42, nil }); err != nil {
		b.Fatal(err)
	}
	build := func() (int, error) { return 0, nil }
	b.ReportAllocs()
	b.ResetTimer()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if v, _ := c.GetOrBuild(k, build); v != 42 {
					panic("bad value")
				}
			}
		})
		return
	}
	for i := 0; i < b.N; i++ {
		if v, _ := c.GetOrBuild(k, build); v != 42 {
			b.Fatal("bad value")
		}
	}
}

func BenchmarkCacheHit(b *testing.B)         { benchCache(b, false) }
func BenchmarkCacheHitParallel(b *testing.B) { benchCache(b, true) }

func BenchmarkCacheHitLegacy(b *testing.B) {
	SetFastPaths(false)
	defer SetFastPaths(true)
	benchCache(b, false)
}

func benchPool(b *testing.B, parallel bool) {
	p := NewPool(64, func(ctx context.Context) (Resetter, error) {
		return benchInst{}, nil
	})
	// Pre-warm so the timed loop is pure checkout/checkin.
	warm := make([]Resetter, 16)
	for i := range warm {
		inst, err := p.Get()
		if err != nil {
			b.Fatal(err)
		}
		warm[i] = inst
	}
	for _, inst := range warm {
		p.Put(inst)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if parallel {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				inst, err := p.Get()
				if err != nil {
					panic(err)
				}
				p.Put(inst)
			}
		})
		return
	}
	for i := 0; i < b.N; i++ {
		inst, err := p.Get()
		if err != nil {
			b.Fatal(err)
		}
		p.Put(inst)
	}
}

func BenchmarkPoolGetPut(b *testing.B)         { benchPool(b, false) }
func BenchmarkPoolGetPutParallel(b *testing.B) { benchPool(b, true) }

func BenchmarkPoolGetPutLegacy(b *testing.B) {
	SetFastPaths(false)
	defer SetFastPaths(true)
	benchPool(b, false)
}

// TestFastPathsZeroAlloc pins the lock-free fast paths at zero
// allocations per operation (the benchmarks report it; this gates it).
func TestFastPathsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	var c Cache[int]
	k := KeyOfString("alloc", "gate")
	if _, err := c.GetOrBuild(k, func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	build := func() (int, error) { return 0, nil }
	if n := testing.AllocsPerRun(1000, func() {
		if v, _ := c.GetOrBuild(k, build); v != 7 {
			panic("bad value")
		}
	}); n != 0 {
		t.Fatalf("cache hit allocates %v/op, want 0", n)
	}

	p := NewPool(4, func(ctx context.Context) (Resetter, error) {
		return benchInst{}, nil
	})
	inst, err := p.Get()
	if err != nil {
		t.Fatal(err)
	}
	p.Put(inst)
	if n := testing.AllocsPerRun(1000, func() {
		inst, err := p.Get()
		if err != nil {
			panic(err)
		}
		p.Put(inst)
	}); n != 0 {
		t.Fatalf("pool checkout/checkin allocates %v/op, want 0", n)
	}
}
