package cage_test

import (
	"context"
	"fmt"
	"time"

	"cage"
)

// ExampleToolchain_CompileSource compiles a MiniC translation unit with
// the full Cage pipeline (stack sanitizer, pointer authentication) and
// runs it on a one-off hardened instance.
func ExampleToolchain_CompileSource() {
	tc := cage.NewToolchain(cage.FullHardening())
	mod, err := tc.CompileSource(`
		extern char* malloc(long n);
		extern void free(char* p);

		long sum(long n) {
		    long* a = (long*)malloc(n * 8);
		    long s = 0;
		    for (long i = 0; i < n; i++) { a[i] = i; s += a[i]; }
		    free((char*)a);
		    return s;
		}`)
	if err != nil {
		panic(err)
	}
	rt := cage.NewRuntime(cage.FullHardening())
	inst, err := rt.Instantiate(mod)
	if err != nil {
		panic(err)
	}
	defer inst.Close()
	res, err := inst.Invoke("sum", 100)
	if err != nil {
		panic(err)
	}
	fmt.Println(res[0])
	// Output: 4950
}

// ExampleEngine_Call drives the context-first invocation API: the call
// is bounded by a timeout and a deterministic fuel budget, and the
// Result reports what the call actually consumed.
func ExampleEngine_Call() {
	eng := cage.NewEngine(cage.FullHardening())
	defer eng.Close()

	mod, err := eng.CompileSource(`
		long square_sum(long n) {
		    long s = 0;
		    for (long i = 0; i < n; i++) { s = s + i * i; }
		    return s;
		}`)
	if err != nil {
		panic(err)
	}

	res, err := eng.Call(context.Background(), mod, "square_sum", []uint64{100},
		cage.WithTimeout(time.Second),
		cage.WithFuel(1_000_000))
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values[0], res.Fuel > 0 && res.Fuel < 1_000_000)

	// An insufficient budget traps deterministically.
	_, err = eng.Call(context.Background(), mod, "square_sum", []uint64{100},
		cage.WithFuel(10))
	fmt.Println(cage.IsFuelExhausted(err))
	// Output:
	// 328350 true
	// true
}

// ExampleEngine serves repeated invocations through the engine: the
// second CompileSource is a cache hit, and the invocations recycle one
// pooled instance instead of re-instantiating.
func ExampleEngine() {
	const src = `
		long fib(long n) {
		    long a = 0; long b = 1;
		    for (long i = 0; i < n; i++) { long t = a + b; a = b; b = t; }
		    return a;
		}`

	eng := cage.NewEngine(cage.FullHardening())
	defer eng.Close()

	mod, err := eng.CompileSource(src)
	if err != nil {
		panic(err)
	}
	if again, _ := eng.CompileSource(src); again != mod {
		panic("cache miss on identical source")
	}

	for _, n := range []uint64{10, 20, 30} {
		res, err := eng.Call(context.Background(), mod, "fib", []uint64{n})
		if err != nil {
			panic(err)
		}
		fmt.Println(res.Values[0])
	}

	s := eng.Stats()
	fmt.Printf("compiles: %d, instances spawned: %d, recycled: %d\n",
		s.Cache.Misses, s.Pools.Spawned, s.Pools.Recycled)
	// Output:
	// 55
	// 6765
	// 832040
	// compiles: 1, instances spawned: 1, recycled: 3
}

// ExampleEngine_NewHostModule registers an embedder host module before
// the engine's first call: the typed adapter derives the wasm import
// signature from the Go function, and the MiniC extern resolves
// against it.
func ExampleEngine_NewHostModule() {
	eng := cage.NewEngine(cage.FullHardening())
	defer eng.Close()

	hm, err := eng.NewHostModule("env")
	if err != nil {
		panic(err)
	}
	cage.HostFunc2(hm, "powi", func(_ *cage.HostContext, base, exp int64) (int64, error) {
		r := int64(1)
		for ; exp > 0; exp-- {
			r *= base
		}
		return r, nil
	})

	mod, err := eng.CompileSource(`
		extern long powi(long base, long exp);
		long run(long n) { return powi(2, n) + powi(3, 2); }`)
	if err != nil {
		panic(err)
	}
	res, err := eng.Call(context.Background(), mod, "run", []uint64{10})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Values[0])
	// Output: 1033
}
