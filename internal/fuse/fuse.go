// Package fuse is the profile-guided superinstruction pass: a
// post-lowering rewrite over ir.Program that collapses the hot
// adjacent pairs, triples, and quads a profile (internal/profile)
// observed —
// load+op, op+store, cmp+br, const+op, local traffic — into single
// fused opcodes (ir.OpFusedBase block), halving or thirding dispatch
// overhead on the sequences that dominate polybench inner loops.
//
// The pass is semantics- and event-preserving by construction: every
// fused opcode's executor handler runs the exact constituent sequence
// (same ALU helper, same address-translation function, same cost
// events, same trap points and ordering), so a fused program is
// bit-identical to its unfused twin in results, traps, and the
// architectural event stream — the differential oracle pins this
// across every preset. Safety rules:
//
//   - No pattern contains OpFence, so the hardened preset's
//     speculation barriers are never fused across; fence adjacency is
//     untouched by construction.
//   - A candidate is rejected if any non-head constituent is a branch
//     target: control flow can enter a superinstruction only at its
//     head, exactly like the plain instruction stream.
//   - Branch targets (absolute PCs) are remapped to the rewritten
//     stream, including BrTable target vectors (deep-copied — lowering
//     may share them) and the targets packed inside fused branches.
//
// Fuse refuses to run twice (Program.Fused) because PCs change. A nil
// profile fuses every eligible candidate — the exhaustive mode the
// fuzzer and the differential suite use; the runtime passes the
// polybench default corpus or an embedder-recorded profile instead.
package fuse

import (
	"cage/internal/ir"
	"cage/internal/profile"
	"cage/internal/wasm"
)

// MinCount is the profile threshold: a sequence must have been
// observed at least this many times to drive a fusion.
const MinCount = 1

// Fuse rewrites p with superinstructions for the sequences prof marks
// hot (all eligible sequences when prof is nil). The input program is
// not modified; the result shares no mutable state with it.
func Fuse(p *ir.Program, prof *profile.Profile) *ir.Program {
	if p == nil || p.Fused {
		return p
	}
	out := &ir.Program{Cfg: p.Cfg, Funcs: make([]ir.Func, len(p.Funcs)), Fused: true}
	for i := range p.Funcs {
		out.Funcs[i] = fuseFunc(&p.Funcs[i], prof)
	}
	return out
}

// hot reports whether the profile justifies fusing the sequence.
func hot(prof *profile.Profile, ops ...ir.Op) bool {
	if prof == nil {
		return true
	}
	return prof.Count(ops...) >= MinCount
}

// aluOf returns the wasm opcode of a fusable pure-value instruction:
// a pass-through numeric with a known stack effect (anything the
// executor's ALU implements).
func aluOf(in ir.Instr) (wasm.Opcode, bool) {
	if !in.Op.IsNumeric() {
		return 0, false
	}
	w := in.Op.Wasm()
	if w > 0xFF {
		return 0, false
	}
	_, _, ok := ir.NumericStackEffect(w)
	return w, ok
}

// condALUOf is aluOf restricted to ops that leave exactly one value —
// the shape a fused compare-and-branch consumes.
func condALUOf(in ir.Instr) (wasm.Opcode, bool) {
	w, ok := aluOf(in)
	if !ok {
		return 0, false
	}
	_, push, _ := ir.NumericStackEffect(w)
	return w, push == 1
}

// memParts deconstructs a lowered load/store into the 8-bit fields
// PackFusedMem needs. Lowered memory ops always fit: sizes are ≤ 8,
// opcode variants sit in the named block, and wasm memory opcodes are
// single bytes.
func memParts(in ir.Instr) (size uint64, variant ir.Op, memOp wasm.Opcode, ok bool) {
	size = ir.MemSize(in.B)
	variant = in.Op
	memOp = ir.MemOp(in.B)
	ok = size <= 0xFF && uint16(variant) <= 0xFF && memOp <= 0xFF
	return
}

// branchTargets collects every absolute PC that any branch in code can
// jump to.
func branchTargets(code []ir.Instr) map[int]bool {
	t := make(map[int]bool)
	for _, in := range code {
		switch in.Op {
		case ir.OpGoto, ir.OpBr, ir.OpBrIf, ir.OpBrIfZ:
			t[int(in.B)] = true
		case ir.OpBrTable:
			for _, bt := range in.Targets {
				t[int(bt.PC)] = true
			}
		}
	}
	return t
}

// match tries every fusion pattern at code[i], triples before pairs,
// and returns the fused instruction plus the number of constituents
// consumed (0 = no match). Fused branch targets still carry OLD PCs;
// the caller remaps them after the stream is rebuilt.
func match(code []ir.Instr, i int, targets map[int]bool, prof *profile.Profile) (ir.Instr, int) {
	a := code[i]
	var b, c ir.Instr
	if i+1 < len(code) {
		b = code[i+1]
	}
	if i+2 < len(code) {
		c = code[i+2]
	}
	pairOK := i+1 < len(code) && !targets[i+1]
	tripleOK := i+2 < len(code) && pairOK && !targets[i+2]
	quadOK := tripleOK && i+3 < len(code) && !targets[i+3]
	quintOK := quadOK && i+4 < len(code) && !targets[i+4]
	sextOK := quintOK && i+5 < len(code) && !targets[i+5]
	septOK := sextOK && i+6 < len(code) && !targets[i+6]

	if septOK {
		// alu0; set x; get y; const c; alu1; set y; br — the
		// accumulate-and-advance tail of a counted loop: retire the
		// reduction into x, bump the induction variable y, and take the
		// back edge. Like the quintuple latches this only matches a
		// zero-repair branch, so the executor truncates the stack.
		d, e, f, g := code[i+3], code[i+4], code[i+5], code[i+6]
		if b.Op == ir.OpLocalSet && c.Op == ir.OpLocalGet &&
			d.Op == ir.OpConst && f.Op == ir.OpLocalSet && f.A == c.A &&
			g.Op == ir.OpBr && g.A == 0 &&
			b.A <= 0xFFFF && c.A <= 0xFFFF && d.A <= 0xFF {
			if alu0, ok := aluOf(a); ok {
				if alu1, ok1 := aluOf(e); ok1 && hot(prof, a.Op, b.Op, c.Op) {
					return ir.Instr{Op: ir.OpFusedALUSetIncBr,
						A: uint64(alu0)<<48 | b.A<<32 | c.A<<16 | d.A<<8 | uint64(alu1),
						B: ir.PackFusedBranch(0, g.B)}, 7
				}
			}
		}
	}
	if sextOK {
		// get w; get x; get y; alu1; get z; alu2 — the full
		// multiply-accumulate operand chain of a polybench inner loop.
		d, e, f := code[i+3], code[i+4], code[i+5]
		if a.Op == ir.OpLocalGet && b.Op == ir.OpLocalGet && c.Op == ir.OpLocalGet &&
			e.Op == ir.OpLocalGet &&
			a.A <= 0xFFFF && b.A <= 0xFFFF && c.A <= 0xFFFF && e.A <= 0xFFFF {
			if alu1, ok := aluOf(d); ok {
				if alu2, ok2 := aluOf(f); ok2 && hot(prof, a.Op, b.Op, c.Op) {
					return ir.Instr{Op: ir.OpFusedGet3ALUGetALU,
						A: a.A<<48 | b.A<<32 | c.A<<16 | e.A,
						B: uint64(alu2)<<8 | uint64(alu1)}, 6
				}
			}
		}
	}
	if quintOK {
		// The two loop-shaped quintuples: the head compare-and-exit and
		// the latch increment-and-back-edge that bracket every counted
		// loop the compiler emits. Both require a zero branch-repair
		// pack — the invariant shape of structured loop branches — so
		// the executor can retire the branch without repair plumbing.
		d, e := code[i+3], code[i+4]
		switch {
		case a.Op == ir.OpLocalGet && b.Op == ir.OpLocalGet &&
			a.A <= 0xFFFFFFFF && b.A <= 0xFFFFFFFF &&
			d.Op == ir.OpNumericBase+ir.Op(wasm.OpI32Eqz) &&
			e.Op == ir.OpBrIf && e.A == 0:
			if alu, ok := condALUOf(c); ok && hot(prof, a.Op, b.Op, c.Op) {
				return ir.Instr{Op: ir.OpFusedGetGetCmpEqzBr, A: a.A<<32 | b.A,
					B: ir.PackFusedBranch(uint64(alu), e.B)}, 5
			}
		case a.Op == ir.OpLocalGet && b.Op == ir.OpConst &&
			d.Op == ir.OpLocalSet && d.A == a.A &&
			e.Op == ir.OpBr && e.A == 0 &&
			a.A <= 0xFFFFFFFF && b.A <= 1<<56-1:
			if alu, ok := aluOf(c); ok && hot(prof, a.Op, b.Op, c.Op) {
				return ir.Instr{Op: ir.OpFusedIncBr, A: b.A<<8 | uint64(alu),
					B: ir.PackFusedBranch(a.A, e.B)}, 5
			}
		case a.Op == ir.OpConst && a.A <= 0xFFFFFFFF &&
			d.Op.IsLoad() && d.A <= 0xFFFFFFFF:
			// const c; alu1; alu2; load; alu3 — scaled-index address
			// arithmetic feeding a load whose value joins an ALU chain.
			alu1, ok1 := aluOf(b)
			alu2, ok2 := aluOf(c)
			alu3, ok3 := aluOf(e)
			if ok1 && ok2 && ok3 && hot(prof, a.Op, b.Op, c.Op) {
				if size, variant, memOp, fits := memParts(d); fits {
					return ir.Instr{Op: ir.OpFusedConstALUALULoadALU,
						A: a.A<<32 | d.A,
						B: uint64(alu2)<<40 | uint64(alu1)<<32 |
							ir.PackFusedMem(size, variant, alu3, memOp)}, 5
				}
			}
		}
	}
	if quadOK {
		d := code[i+3]
		// get w; get x; get y; get z — the operand marshalling runs
		// polybench kernels put in front of multiply-accumulate chains.
		if a.Op == ir.OpLocalGet && b.Op == ir.OpLocalGet &&
			c.Op == ir.OpLocalGet && d.Op == ir.OpLocalGet &&
			a.A <= 0xFFFF && b.A <= 0xFFFF && c.A <= 0xFFFF && d.A <= 0xFFFF &&
			hot(prof, a.Op, b.Op, c.Op) {
			return ir.Instr{Op: ir.OpFusedGet4,
				A: a.A<<48 | b.A<<32 | c.A<<16 | d.A}, 4
		}
		// get x; alu1; get y; alu2 — the dependent-chain shape address
		// arithmetic leaves behind once its const+alu prefixes fuse.
		// The profile records pairs and triples only, so the quad gates
		// on its triple prefix.
		if a.Op == ir.OpLocalGet && c.Op == ir.OpLocalGet &&
			a.A <= 0xFFFFFFFF && c.A <= 0xFFFFFFFF {
			if alu1, ok := aluOf(b); ok {
				if alu2, ok2 := aluOf(d); ok2 && hot(prof, a.Op, b.Op, c.Op) {
					return ir.Instr{Op: ir.OpFusedGetALUGetALU, A: a.A<<32 | c.A,
						B: uint64(alu2)<<8 | uint64(alu1)}, 4
				}
			}
		}
	}
	if tripleOK {
		switch {
		case a.Op == ir.OpLocalGet && b.Op == ir.OpLocalGet:
			if alu, ok := aluOf(c); ok && a.A <= 0xFFFFFFFF && b.A <= 0xFFFFFFFF &&
				hot(prof, a.Op, b.Op, c.Op) {
				return ir.Instr{Op: ir.OpFusedGetGetALU, A: a.A<<32 | b.A, B: uint64(alu)}, 3
			}
		case a.Op == ir.OpLocalGet && b.Op == ir.OpConst:
			if alu, ok := aluOf(c); ok && a.A <= 0xFFFFFFFF && hot(prof, a.Op, b.Op, c.Op) {
				return ir.Instr{Op: ir.OpFusedGetConstALU, A: b.A,
					B: ir.PackFusedBranch(a.A, uint64(alu))}, 3
			}
		case b.Op == ir.OpNumericBase+ir.Op(wasm.OpI32Eqz) && c.Op == ir.OpBrIf:
			if alu, ok := condALUOf(a); ok && hot(prof, a.Op, b.Op, c.Op) {
				return ir.Instr{Op: ir.OpFusedCmpEqzBrIf, A: c.A,
					B: ir.PackFusedBranch(uint64(alu), c.B)}, 3
			}
		case a.Op == ir.OpConst:
			if alu1, ok := aluOf(b); ok {
				if alu2, ok2 := aluOf(c); ok2 && hot(prof, a.Op, b.Op, c.Op) {
					return ir.Instr{Op: ir.OpFusedConstALUALU, A: a.A,
						B: uint64(alu2)<<8 | uint64(alu1)}, 3
				}
			}
		}
	}
	if !pairOK {
		return ir.Instr{}, 0
	}
	if !hot(prof, a.Op, b.Op) {
		return ir.Instr{}, 0
	}
	switch {
	case a.Op == ir.OpLocalGet && b.Op == ir.OpLocalGet:
		return ir.Instr{Op: ir.OpFusedGetGet, A: a.A, B: b.A}, 2
	case a.Op == ir.OpLocalGet && b.Op == ir.OpConst:
		return ir.Instr{Op: ir.OpFusedGetConst, A: a.A, B: b.A}, 2
	case a.Op == ir.OpConst:
		if alu, ok := aluOf(b); ok {
			return ir.Instr{Op: ir.OpFusedConstALU, A: a.A, B: uint64(alu)}, 2
		}
	case a.Op == ir.OpLocalGet:
		if alu, ok := aluOf(b); ok {
			return ir.Instr{Op: ir.OpFusedGetALU, A: a.A, B: uint64(alu)}, 2
		}
	case a.Op == ir.OpLocalSet && b.Op == ir.OpLocalGet:
		return ir.Instr{Op: ir.OpFusedSetGet, A: a.A, B: b.A}, 2
	case a.Op == ir.OpLocalSet && b.Op == ir.OpBr:
		if a.A <= 0xFFFFFFFF {
			return ir.Instr{Op: ir.OpFusedSetBr, A: b.A,
				B: ir.PackFusedBranch(a.A, b.B)}, 2
		}
	case a.Op.IsLoad():
		if alu, ok := aluOf(b); ok {
			if size, variant, memOp, fits := memParts(a); fits {
				return ir.Instr{Op: ir.OpFusedLoadALU, A: a.A,
					B: ir.PackFusedMem(size, variant, alu, memOp)}, 2
			}
		}
	}
	// Patterns headed by a pure-value op.
	if alu, ok := aluOf(a); ok {
		switch {
		case b.Op == ir.OpLocalSet:
			return ir.Instr{Op: ir.OpFusedALUSet, A: b.A, B: uint64(alu)}, 2
		case b.Op == ir.OpBrIf:
			if _, cond := condALUOf(a); cond {
				return ir.Instr{Op: ir.OpFusedCmpBrIf, A: b.A,
					B: ir.PackFusedBranch(uint64(alu), b.B)}, 2
			}
		case b.Op == ir.OpBrIfZ:
			if _, cond := condALUOf(a); cond {
				return ir.Instr{Op: ir.OpFusedCmpBrIfZ, A: b.A,
					B: ir.PackFusedBranch(uint64(alu), b.B)}, 2
			}
		case b.Op.IsLoad():
			if size, variant, memOp, fits := memParts(b); fits {
				return ir.Instr{Op: ir.OpFusedALULoad, A: b.A,
					B: ir.PackFusedMem(size, variant, alu, memOp)}, 2
			}
		case b.Op.IsStore():
			if size, variant, memOp, fits := memParts(b); fits {
				return ir.Instr{Op: ir.OpFusedALUStore, A: b.A,
					B: ir.PackFusedMem(size, variant, alu, memOp)}, 2
			}
		}
	}
	return ir.Instr{}, 0
}

func fuseFunc(f *ir.Func, prof *profile.Profile) ir.Func {
	targets := branchTargets(f.Code)
	// newPC maps every old PC (and the one-past-end sentinel) to its
	// position in the rewritten stream; interior constituents map to
	// their head, but no branch can name them (match guarantees it).
	newPC := make([]int, len(f.Code)+1)
	code := make([]ir.Instr, 0, len(f.Code))
	for i := 0; i < len(f.Code); {
		newPC[i] = len(code)
		in, n := match(f.Code, i, targets, prof)
		if n == 0 {
			code = append(code, f.Code[i])
			i++
			continue
		}
		for j := 1; j < n; j++ {
			newPC[i+j] = len(code)
		}
		code = append(code, in)
		i += n
	}
	newPC[len(f.Code)] = len(code)

	for pc := range code {
		in := &code[pc]
		switch {
		case in.Op == ir.OpGoto || in.Op == ir.OpBr || in.Op == ir.OpBrIf || in.Op == ir.OpBrIfZ:
			in.B = uint64(newPC[in.B])
		case in.Op == ir.OpBrTable:
			ts := make([]ir.BranchTarget, len(in.Targets))
			copy(ts, in.Targets)
			for k := range ts {
				ts[k].PC = uint32(newPC[ts[k].PC])
			}
			in.Targets = ts
		case in.Op == ir.OpFusedSetBr || in.Op == ir.OpFusedCmpBrIf ||
			in.Op == ir.OpFusedCmpBrIfZ || in.Op == ir.OpFusedCmpEqzBrIf ||
			in.Op == ir.OpFusedGetGetCmpEqzBr || in.Op == ir.OpFusedIncBr ||
			in.Op == ir.OpFusedALUSetIncBr:
			in.B = ir.PackFusedBranch(ir.FusedBranchAux(in.B),
				uint64(newPC[ir.FusedBranchTarget(in.B)]))
		}
	}

	g := *f
	g.Code = code
	return g
}
