// Host-module facade: the embedder-facing surface for defining host
// functions. Types alias the exec implementations so values flow
// between the facade and the execution engine without wrappers; the
// generic adapter functions re-export the typed lowering.
package cage

import (
	"cage/internal/exec"
	"cage/internal/wasm"
)

// HostModule is a named module of host functions guests import
// ("env.log", "mymod.get_config", ...). Obtain one from
// Engine.NewHostModule (or Runtime.NewHostModule) before the engine's
// first Call, then define functions with the typed adapters
// (HostFunc0..HostFunc4, HostVoid0..HostVoid4) or the raw Func slot:
//
//	hm, err := eng.NewHostModule("env")
//	cage.HostFunc2(hm, "add", func(hc *cage.HostContext, a, b int64) (int64, error) {
//	    return a + b, nil
//	})
//
// The module freezes at the engine's first use (ErrEngineStarted
// semantics): the host surface is fixed before the first call, so
// resolved import tables are snapshotted per compiled module and
// shared by every pooled instance.
type HostModule = exec.HostModule

// HostContext is passed to every host function: the in-flight call's
// context (Context), a bounds-checked view of guest memory (Memory),
// fuel accounting against the active meter chain (ConsumeFuel), and
// re-entrant guest calls (Call). See exec.HostContext for details.
type HostContext = exec.HostContext

// HostMemory is the bounds-checked host view of guest linear memory:
// accepts (and untags) guest pointers, charges the timing model,
// enforces the guest-visible bounds, and — running with runtime
// privileges — bypasses MTE tag checks.
type HostMemory = exec.Memory

// HostPtr marks a guest-pointer parameter or result in typed host
// signatures: parameters arrive untagged, results pass through (a
// tagged pointer keeps its tag).
type HostPtr = exec.Ptr

// HostStr marks a guest string parameter: (pointer, length) in the
// wasm signature, materialized through the bounds-checked memory view.
type HostStr = exec.Str

// HostParam constrains typed host-function parameters.
type HostParam = exec.HostParam

// HostResult constrains typed host-function results.
type HostResult = exec.HostResult

// HostFn is the raw-slot host callback for signatures the typed
// adapters do not cover; args and results are raw 64-bit value bits.
type HostFn = exec.HostFn

// ValType is a raw wasm value type, for raw-slot signatures.
type ValType = wasm.ValType

// Raw wasm value types.
const (
	I32 = wasm.I32
	I64 = wasm.I64
	F32 = wasm.F32
	F64 = wasm.F64
)

// FuncType is a raw wasm function signature, for raw-slot definitions
// via HostModule.Func.
type FuncType = wasm.FuncType

// Structured link errors. Instantiation (and therefore Engine.Call on
// a module with unresolvable imports) fails with a *LinkError carrying
// the import's module/name and the types involved; errors.Is matches
// the sentinels.
var (
	ErrUnresolvedImport   = exec.ErrUnresolvedImport
	ErrImportTypeMismatch = exec.ErrImportTypeMismatch
)

// LinkError is a structured link failure (which import, declared vs
// offered type).
type LinkError = exec.LinkError

// Typed adapters: each derives the wasm signature from the Go
// signature and lowers the typed function onto a raw host slot.
// Supported parameter types: int32, uint32, int64, uint64, float64,
// HostPtr, HostStr; results: the same minus HostStr.

// HostVoid0 defines name as func() with no results.
func HostVoid0(hm *HostModule, name string, fn func(*HostContext) error) *HostModule {
	return exec.Void0(hm, name, fn)
}

// HostVoid1 defines name as func(A) with no results.
func HostVoid1[A HostParam](hm *HostModule, name string, fn func(*HostContext, A) error) *HostModule {
	return exec.Void1(hm, name, fn)
}

// HostVoid2 defines name as func(A, B) with no results.
func HostVoid2[A, B HostParam](hm *HostModule, name string, fn func(*HostContext, A, B) error) *HostModule {
	return exec.Void2(hm, name, fn)
}

// HostVoid3 defines name as func(A, B, C) with no results.
func HostVoid3[A, B, C HostParam](hm *HostModule, name string, fn func(*HostContext, A, B, C) error) *HostModule {
	return exec.Void3(hm, name, fn)
}

// HostVoid4 defines name as func(A, B, C, D) with no results.
func HostVoid4[A, B, C, D HostParam](hm *HostModule, name string, fn func(*HostContext, A, B, C, D) error) *HostModule {
	return exec.Void4(hm, name, fn)
}

// HostFunc0 defines name as func() R.
func HostFunc0[R HostResult](hm *HostModule, name string, fn func(*HostContext) (R, error)) *HostModule {
	return exec.Func0(hm, name, fn)
}

// HostFunc1 defines name as func(A) R.
func HostFunc1[A HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A) (R, error)) *HostModule {
	return exec.Func1(hm, name, fn)
}

// HostFunc2 defines name as func(A, B) R.
func HostFunc2[A, B HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A, B) (R, error)) *HostModule {
	return exec.Func2(hm, name, fn)
}

// HostFunc3 defines name as func(A, B, C) R.
func HostFunc3[A, B, C HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A, B, C) (R, error)) *HostModule {
	return exec.Func3(hm, name, fn)
}

// HostFunc4 defines name as func(A, B, C, D) R.
func HostFunc4[A, B, C, D HostParam, R HostResult](hm *HostModule, name string, fn func(*HostContext, A, B, C, D) (R, error)) *HostModule {
	return exec.Func4(hm, name, fn)
}
