package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"cage"
)

// guestSource is the shared test guest: arithmetic, a memory probe for
// isolation tests, a deterministic trap, and an infinite loop.
const guestSource = `
extern char* malloc(long n);

long add(long a, long b) { return a + b; }

// probe reads the first word of a fresh heap chunk before writing v
// into it. On a correctly reset pooled instance the previous content
// is always zero; any other value is another invocation's heap leaking
// through recycling.
long probe(long v) {
    long* p = (long*)malloc(8);
    long old = *p;
    *p = v;
    return old;
}

long crash(long n) { return n / (n - n); }

long spin(long n) {
    while (1) { n = n + 1; }
    return n;
}
`

// newTestServer stands up a Server over real loopback HTTP.
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *Server) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts, srv
}

// postJSON posts raw bytes and decodes the response body into out
// (which may be nil), returning the response.
func postJSON(t *testing.T, ts *httptest.Server, path, tenant string, body []byte, out any) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("%s: Content-Type = %q, want application/json", path, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp
}

func uploadSource(t *testing.T, ts *httptest.Server, tenant, src string) UploadResponse {
	t.Helper()
	var up UploadResponse
	resp := postJSON(t, ts, "/v1/modules", tenant, []byte(src), &up)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	return up
}

func invoke(t *testing.T, ts *httptest.Server, tenant string, req InvokeRequest) (*http.Response, InvokeResponse, errorBody) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage
	resp := postJSON(t, ts, "/v1/invoke", tenant, body, &raw)
	var ok InvokeResponse
	var eb errorBody
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ok); err != nil {
			t.Fatalf("invoke: decoding 200 body: %v", err)
		}
	} else if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("invoke: decoding error body: %v", err)
	}
	return resp, ok, eb
}

func TestUploadInvokeRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t, Options{Config: cage.FullHardening(), ConfigName: "full"})

	up := uploadSource(t, ts, "", guestSource)
	if !strings.HasPrefix(up.Module, "sha256:") {
		t.Errorf("module id %q is not content-addressed", up.Module)
	}
	if up.Cached {
		t.Error("first upload reported cached")
	}
	want := []string{"add", "crash", "probe", "spin"}
	if fmt.Sprint(up.Exports) != fmt.Sprint(want) {
		t.Errorf("exports = %v, want %v", up.Exports, want)
	}

	// Same content again: same id, served from the registry.
	again := uploadSource(t, ts, "", guestSource)
	if again.Module != up.Module || !again.Cached {
		t.Errorf("re-upload: got (%q, cached=%t), want (%q, cached=true)", again.Module, again.Cached, up.Module)
	}

	resp, res, _ := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{3, 4}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invoke add: status %d", resp.StatusCode)
	}
	if len(res.Values) != 1 || res.Values[0] != 7 {
		t.Errorf("add(3,4) = %v, want [7]", res.Values)
	}
	if res.Fuel == 0 || len(res.Events) == 0 {
		t.Errorf("telemetry missing: fuel=%d events=%v", res.Fuel, res.Events)
	}
}

func TestUploadBinaryModule(t *testing.T) {
	ts, _ := newTestServer(t, Options{Config: cage.SandboxingOnly(), ConfigName: "sandbox"})

	// Compile out-of-band and upload the binary image instead of source.
	tc := cage.NewToolchain(cage.SandboxingOnly())
	mod, err := tc.CompileSource(`long twice(long n) { return n * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := mod.Encode()
	if err != nil {
		t.Fatal(err)
	}
	var up UploadResponse
	resp := postJSON(t, ts, "/v1/modules", "", bin, &up)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("binary upload: status %d", resp.StatusCode)
	}
	r2, res, _ := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "twice", Args: []uint64{21}})
	if r2.StatusCode != http.StatusOK || res.Values[0] != 42 {
		t.Fatalf("twice(21): status %d values %v", r2.StatusCode, res.Values)
	}
}

// TestErrorMapping pins the structured-error contract: every failure
// mode maps to a stable (status, code) pair with a JSON body.
func TestErrorMapping(t *testing.T) {
	ts, _ := newTestServer(t, Options{Config: cage.FullHardening(), ConfigName: "full"})
	up := uploadSource(t, ts, "", guestSource)

	t.Run("malformed-json", func(t *testing.T) {
		var eb errorBody
		resp := postJSON(t, ts, "/v1/invoke", "", []byte(`{"module":`), &eb)
		if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
			t.Errorf("got (%d, %q), want (400, bad_request)", resp.StatusCode, eb.Error.Code)
		}
	})

	t.Run("unknown-field", func(t *testing.T) {
		var eb errorBody
		resp := postJSON(t, ts, "/v1/invoke", "", []byte(`{"module":"x","function":"f","argz":[1]}`), &eb)
		if resp.StatusCode != http.StatusBadRequest || eb.Error.Code != "bad_request" {
			t.Errorf("got (%d, %q), want (400, bad_request)", resp.StatusCode, eb.Error.Code)
		}
	})

	t.Run("unknown-module", func(t *testing.T) {
		resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: "sha256:feed", Function: "add", Args: []uint64{1, 2}})
		if resp.StatusCode != http.StatusNotFound || eb.Error.Code != "module_not_found" {
			t.Errorf("got (%d, %q), want (404, module_not_found)", resp.StatusCode, eb.Error.Code)
		}
	})

	t.Run("unknown-function", func(t *testing.T) {
		resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "nope"})
		if resp.StatusCode != http.StatusNotFound || eb.Error.Code != "function_not_found" {
			t.Errorf("got (%d, %q), want (404, function_not_found)", resp.StatusCode, eb.Error.Code)
		}
	})

	t.Run("bad-arity", func(t *testing.T) {
		resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{1}})
		if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "bad_arity" {
			t.Errorf("got (%d, %q), want (422, bad_arity)", resp.StatusCode, eb.Error.Code)
		}
	})

	t.Run("guest-trap", func(t *testing.T) {
		resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "crash", Args: []uint64{5}})
		if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "guest_trap" {
			t.Errorf("got (%d, %q), want (422, guest_trap)", resp.StatusCode, eb.Error.Code)
		}
		if eb.Error.Trap != "integer divide by zero" {
			t.Errorf("trap = %q, want %q", eb.Error.Trap, "integer divide by zero")
		}
	})

	t.Run("fuel-exhausted", func(t *testing.T) {
		resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}, Fuel: 10_000})
		if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "guest_trap" {
			t.Errorf("got (%d, %q), want (422, guest_trap)", resp.StatusCode, eb.Error.Code)
		}
		if eb.Error.Trap != "fuel exhausted" {
			t.Errorf("trap = %q, want %q", eb.Error.Trap, "fuel exhausted")
		}
	})

	t.Run("invalid-binary", func(t *testing.T) {
		var eb errorBody
		resp := postJSON(t, ts, "/v1/modules", "", []byte("\x00asm\x01garbage"), &eb)
		if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "invalid_module" {
			t.Errorf("got (%d, %q), want (422, invalid_module)", resp.StatusCode, eb.Error.Code)
		}
	})

	t.Run("compile-error", func(t *testing.T) {
		var eb errorBody
		resp := postJSON(t, ts, "/v1/modules", "", []byte("long f( {"), &eb)
		if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Code != "compile_error" {
			t.Errorf("got (%d, %q), want (422, compile_error)", resp.StatusCode, eb.Error.Code)
		}
	})
}

// TestMultiTenantIsolation races 16 goroutines across 4 tenants against
// one pooled module and proves two isolation properties: no invocation
// ever observes another's heap through instance recycling (the probe
// always reads zero), and every tenant's metrics count exactly its own
// requests. Run under -race in CI.
func TestMultiTenantIsolation(t *testing.T) {
	// MTE sandboxing alone: a 15-tag budget, so the 16 goroutines
	// genuinely share and recycle pooled instances.
	ts, srv := newTestServer(t, Options{Config: cage.SandboxingOnly(), ConfigName: "sandbox"})
	up := uploadSource(t, ts, "t0", guestSource)

	const (
		tenantsN   = 4
		perTenant  = 4  // goroutines per tenant
		perRoutine = 25 // requests per goroutine
	)
	var wg sync.WaitGroup
	errCh := make(chan error, tenantsN*perTenant)
	for ti := 0; ti < tenantsN; ti++ {
		for g := 0; g < perTenant; g++ {
			wg.Add(1)
			go func(ti, g int) {
				defer wg.Done()
				client := &Client{BaseURL: ts.URL, Tenant: fmt.Sprintf("t%d", ti)}
				for i := 0; i < perRoutine; i++ {
					// A tenant-distinct, never-zero secret: if any other
					// invocation reads it back, isolation broke.
					secret := uint64(ti+1)<<32 | uint64(g)<<16 | uint64(i+1)
					res, err := client.Invoke(InvokeRequest{Module: up.Module, Function: "probe", Args: []uint64{secret}})
					if err != nil {
						errCh <- fmt.Errorf("tenant %d: %w", ti, err)
						return
					}
					if res.Values[0] != 0 {
						errCh <- fmt.Errorf("tenant %d read stale heap word %#x from a recycled instance", ti, res.Values[0])
						return
					}
				}
			}(ti, g)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	stats := srv.StatsSnapshot()
	for ti := 0; ti < tenantsN; ti++ {
		name := fmt.Sprintf("t%d", ti)
		tn, ok := stats.Tenants[name]
		if !ok {
			t.Fatalf("no stats for tenant %s", name)
		}
		wantReqs := uint64(perTenant * perRoutine)
		if tn.Requests != wantReqs || tn.OK != wantReqs {
			t.Errorf("tenant %s: requests=%d ok=%d, want %d each (metrics leaked across tenants)", name, tn.Requests, tn.OK, wantReqs)
		}
		if tn.Fuel == 0 {
			t.Errorf("tenant %s: no fuel accounted", name)
		}
	}
	mod := stats.Modules[up.Module]
	wantTotal := uint64(tenantsN * perTenant * perRoutine)
	if mod.OK != wantTotal {
		t.Errorf("module ok=%d, want %d", mod.OK, wantTotal)
	}
	if mod.Pool.Live > 15 {
		t.Errorf("pool live=%d exceeds the §7.4 tag budget", mod.Pool.Live)
	}
	if mod.Pool.Recycled == 0 {
		t.Error("no instance was ever recycled — the pool is not pooling")
	}
}

// TestStatsAndMetrics pins the observability surface: cache counters,
// pool occupancy, and the Prometheus rendering.
func TestStatsAndMetrics(t *testing.T) {
	ts, srv := newTestServer(t, Options{Config: cage.Baseline64(), ConfigName: "baseline64"})
	up := uploadSource(t, ts, "obs", guestSource)
	// Registry source-index hit: answered before the engine is touched.
	if again := uploadSource(t, ts, "obs", guestSource); !again.Cached {
		t.Error("re-upload not served from the registry")
	}
	for i := 0; i < 3; i++ {
		resp, _, _ := invoke(t, ts, "obs", InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{uint64(i), 1}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("invoke %d: status %d", i, resp.StatusCode)
		}
	}

	stats := srv.StatsSnapshot()
	if stats.Config != "baseline64" {
		t.Errorf("config label = %q", stats.Config)
	}
	if stats.ModuleCache.Misses != 1 {
		t.Errorf("module cache misses = %d, want 1 — the re-upload must not recompile", stats.ModuleCache.Misses)
	}
	if stats.ProgramCache.Misses == 0 {
		t.Error("no lowered program was ever built")
	}
	mod := stats.Modules[up.Module]
	if mod.Pool.Spawned == 0 || mod.Pool.Idle == 0 {
		t.Errorf("pool snapshot %+v: expected a spawned, checked-in instance", mod.Pool)
	}
	if got := stats.Tenants["obs"].OK; got != 3 {
		t.Errorf("tenant ok=%d, want 3", got)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	prom := buf.String()
	for _, w := range []string{
		`cage_requests_total{tenant="obs",outcome="ok"} 3`,
		`cage_cache_hits_total{cache="module"}`,
		fmt.Sprintf(`cage_pool_live{module=%q}`, up.Module),
		`# TYPE cage_queue_depth gauge`,
	} {
		if !strings.Contains(prom, w) {
			t.Errorf("/metrics output missing %q", w)
		}
	}

	// /healthz and module listing round out the read-only surface.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil || hr.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v %v", err, hr)
	}
	hr.Body.Close()
	lr, err := http.Get(ts.URL + "/v1/modules")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var list struct {
		Modules []ModuleInfo `json:"modules"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Modules) != 1 || list.Modules[0].Module != up.Module {
		t.Errorf("module list = %+v, want the one registered module", list.Modules)
	}
}
