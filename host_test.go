package cage

// Tests for the public host-module API: Engine.NewHostModule with the
// typed adapters, the freeze-at-first-use contract, structured link
// errors, interruption of blocking host calls through Engine.Call, and
// a WASI round-trip through the public Memory view.

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cage/internal/exec"
	"cage/internal/wasm"
)

func TestEngineHostModuleTypedEndToEnd(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	hm, err := eng.NewHostModule("env")
	if err != nil {
		t.Fatal(err)
	}
	HostFunc2(hm, "clamp", func(_ *HostContext, v, hi int64) (int64, error) {
		if v > hi {
			return hi, nil
		}
		return v, nil
	})
	mod, err := eng.CompileSource(`
		extern long clamp(long v, long hi);
		long run(long n) {
		    long s = 0;
		    for (long i = 0; i < n; i++) { s = s + clamp(i, 10); }
		    return s;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Call(context.Background(), mod, "run", []uint64{20})
	if err != nil {
		t.Fatal(err)
	}
	// 0+1+...+9 + 10*10 = 45 + 100.
	if res.Values[0] != 145 {
		t.Errorf("run = %d", res.Values[0])
	}
}

func TestNewHostModuleAfterFirstCallFails(t *testing.T) {
	eng := NewEngine(Baseline64())
	defer eng.Close()
	mod, err := eng.CompileSource(`long one(long x) { return 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Call(context.Background(), mod, "one", []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.NewHostModule("late"); !errors.Is(err, ErrEngineStarted) {
		t.Errorf("NewHostModule after first Call = %v, want ErrEngineStarted", err)
	}
}

func TestBlockingHostCallTimesOutWithTrapInterrupted(t *testing.T) {
	// The acceptance scenario: a guest parked inside a blocking host
	// function is interruptible — Engine.Call with WithTimeout returns
	// TrapInterrupted, because the host observes the call context.
	eng := NewEngine(Baseline64())
	defer eng.Close()
	hm, err := eng.NewHostModule("env")
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	HostFunc0(hm, "block", func(hc *HostContext) (int64, error) {
		entered <- struct{}{}
		<-hc.Context().Done() // a blocking syscall standing in
		return 0, hc.Context().Err()
	})
	mod, err := eng.CompileSource(`
		extern long block();
		long run(long x) { return block(); }`)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel only once the guest is provably parked inside the host
	// function: a fixed timeout can expire during the first checkout
	// (instantiation under a loaded CPU), which legitimately returns a
	// bare context error instead of the trap this test pins down.
	start := time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		select {
		case <-entered:
			entered <- struct{}{} // re-arm for the entry check below
		case <-time.After(10 * time.Second):
		}
		cancel()
	}()
	_, err = eng.Call(ctx, mod, "run", []uint64{0})
	if !IsInterrupted(err) {
		t.Fatalf("blocking host call = %v, want interrupted", err)
	}
	var trap *exec.Trap
	if !errors.As(err, &trap) || trap.Code != exec.TrapInterrupted {
		t.Fatalf("err = %v, want TrapInterrupted trap", err)
	}
	select {
	case <-entered:
	default:
		t.Fatal("host function never entered")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("interruption took %v", elapsed)
	}
	// The pooled instance survives for the next call.
	if _, err := eng.Call(context.Background(), mod, "run", []uint64{0},
		WithTimeout(20*time.Millisecond)); !IsInterrupted(err) {
		t.Errorf("second call = %v, want interrupted", err)
	}
}

func TestLinkErrorsThroughPublicAPI(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	missing, err := eng.CompileSource(`
		extern long nosuch(long x);
		long run(long x) { return nosuch(x); }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.Call(context.Background(), missing, "run", []uint64{1})
	if !errors.Is(err, ErrUnresolvedImport) {
		t.Fatalf("missing import = %v, want ErrUnresolvedImport", err)
	}
	var le *LinkError
	if !errors.As(err, &le) || le.Module != "env" || le.Name != "nosuch" {
		t.Fatalf("LinkError detail = %+v", le)
	}

	// The built-in env.sqrt is f64→f64; declaring it long→long must be
	// a structured type mismatch.
	eng2 := NewEngine(FullHardening())
	defer eng2.Close()
	mismatched, err := eng2.CompileSource(`
		extern long sqrt(long x);
		long run(long x) { return sqrt(x); }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng2.Call(context.Background(), mismatched, "run", []uint64{1})
	if !errors.Is(err, ErrImportTypeMismatch) {
		t.Fatalf("mismatched import = %v, want ErrImportTypeMismatch", err)
	}
	if !errors.As(err, &le) || le.Name != "sqrt" {
		t.Fatalf("LinkError detail = %+v", le)
	}
}

func TestHostModuleRawSlot(t *testing.T) {
	// The raw Func slot handles signatures the typed adapters do not.
	eng := NewEngine(Baseline64())
	defer eng.Close()
	hm, err := eng.NewHostModule("env")
	if err != nil {
		t.Fatal(err)
	}
	hm.Func("mix", FuncType{Params: []ValType{I64, I64}, Results: []ValType{I64}},
		func(_ *HostContext, args []uint64) ([]uint64, error) {
			return []uint64{args[0] ^ args[1]}, nil
		})
	mod, err := eng.CompileSource(`
		extern long mix(long a, long b);
		long run(long x) { return mix(x, 255); }`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Call(context.Background(), mod, "run", []uint64{0xF0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != 0x0F {
		t.Errorf("mix = %#x", res.Values[0])
	}
}

// wasiWriteModule builds a wasm64 module importing
// wasi_snapshot_preview1.fd_write and exporting write(iovs, len,
// nwritten) that forwards to it with fd=1.
func wasiWriteModule() *wasm.Module {
	m := &wasm.Module{}
	tFd := m.AddType(wasm.FuncType{
		Params:  []wasm.ValType{wasm.I32, wasm.I64, wasm.I64, wasm.I64},
		Results: []wasm.ValType{wasm.I32},
	})
	tGo := m.AddType(wasm.FuncType{
		Params:  []wasm.ValType{wasm.I64, wasm.I64, wasm.I64},
		Results: []wasm.ValType{wasm.I32},
	})
	m.Imports = []wasm.Import{{Module: "wasi_snapshot_preview1", Name: "fd_write", TypeIdx: tFd}}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: tGo, Body: []wasm.Instr{
		wasm.I32Const(1),
		wasm.LocalGet(0), wasm.LocalGet(1), wasm.LocalGet(2),
		wasm.Call(0), wasm.End(),
	}}}
	m.Exports = []wasm.Export{{Name: "write", Kind: wasm.ExportFunc, Idx: 1}}
	return m
}

func TestWASIFdWriteRoundTripThroughMemoryView(t *testing.T) {
	var out bytes.Buffer
	rt := NewRuntime(Baseline64())
	rt.SetStdio(&out, nil)
	inst, err := rt.Instantiate(&Module{wasm: wasiWriteModule()})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Close()

	// Lay out "hello wasi" at 64 and an iovec {base=64, len=11} at 128.
	mem := inst.Memory()
	copy(mem[64:], "hello wasi\n")
	raw := inst.Raw().HostContext(nil).Memory()
	if err := raw.WriteU64(128, 64); err != nil {
		t.Fatal(err)
	}
	if err := raw.WriteU64(136, 11); err != nil {
		t.Fatal(err)
	}
	res, err := inst.Call(context.Background(), "write", []uint64{128, 1, 256})
	if err != nil {
		t.Fatal(err)
	}
	if int32(res.Values[0]) != 0 {
		t.Fatalf("fd_write errno = %d", int32(res.Values[0]))
	}
	if out.String() != "hello wasi\n" {
		t.Errorf("stdout = %q", out.String())
	}
	n, err := raw.ReadU64(256)
	if err != nil || n != 11 {
		t.Errorf("nwritten = %d, %v", n, err)
	}
}

func TestConcurrentCallsWithHostModule(t *testing.T) {
	// Pooled instances share one resolved import table; hammer it from
	// several goroutines to prove the snapshot (and the per-instance
	// host state behind it) is race-free.
	eng := NewEngine(FullHardening())
	defer eng.Close()
	hm, err := eng.NewHostModule("env")
	if err != nil {
		t.Fatal(err)
	}
	HostFunc1(hm, "twice", func(_ *HostContext, v int64) (int64, error) { return 2 * v, nil })
	mod, err := eng.CompileSource(`
		extern char* malloc(long n);
		extern long twice(long v);
		long run(long n) {
		    long* a = (long*)malloc(n * 8);
		    long s = 0;
		    for (long i = 0; i < n; i++) { a[i] = twice(i); s = s + a[i]; }
		    return s;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := eng.Call(context.Background(), mod, "run", []uint64{50})
				if err != nil {
					errs <- err
					return
				}
				if res.Values[0] != 2450 {
					errs <- errors.New("wrong sum")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestHostStrParameter(t *testing.T) {
	eng := NewEngine(FullHardening())
	defer eng.Close()
	var seen []string
	var mu sync.Mutex
	hm, err := eng.NewHostModule("env")
	if err != nil {
		t.Fatal(err)
	}
	HostVoid1(hm, "log_str", func(_ *HostContext, s HostStr) error {
		mu.Lock()
		seen = append(seen, string(s))
		mu.Unlock()
		return nil
	})
	mod, err := eng.CompileSource(`
		extern void log_str(char* p, long n);
		long run(long x) {
		    log_str("host api", 8);
		    return 0;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Call(context.Background(), mod, "run", []uint64{0}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 1 || !strings.Contains(seen[0], "host api") {
		t.Errorf("log_str saw %q", seen)
	}
}
