// Package wasi provides the minimal WASI (WebAssembly System Interface)
// host surface the Cage toolchain needs, ported to wasm64 the way the
// paper ports wasi-libc (§6.2): pointers and sizes in the ABI widen from
// 32 to 64 bits.
//
// Implemented calls: fd_write (stdout/stderr via io.Writer), proc_exit,
// clock_time_get (virtual, deterministic), random_get (seeded,
// deterministic), args_sizes_get/args_get, environ_sizes_get/environ_get.
package wasi

import (
	"io"

	"cage/internal/exec"
	"cage/internal/wasm"
)

// Module is the WASI import-module name.
const Module = "wasi_snapshot_preview1"

// Errno values (subset).
const (
	ErrnoSuccess uint64 = 0
	ErrnoBadf    uint64 = 8
	ErrnoFault   uint64 = 21
	ErrnoInval   uint64 = 28
)

// System is one instance's WASI state.
type System struct {
	Stdout io.Writer
	Stderr io.Writer
	Args   []string
	Env    []string
	// clock is virtual time in nanoseconds, advanced per query so
	// repeated reads are monotone yet deterministic.
	clock uint64
	// rng is the deterministic random_get state.
	rng uint64
}

// New creates a WASI system writing to the given stdout/stderr.
func New(stdout, stderr io.Writer) *System {
	if stdout == nil {
		stdout = io.Discard
	}
	if stderr == nil {
		stderr = io.Discard
	}
	return &System{Stdout: stdout, Stderr: stderr, clock: 1_000_000_000, rng: 0x853C49E6748FEA9B}
}

func (s *System) next() uint64 {
	x := s.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	s.rng = x
	return x
}

// Register installs the WASI functions into the linker.
func (s *System) Register(l *exec.Linker) {
	i32 := wasm.I32
	i64 := wasm.I64

	// fd_write(fd: i32, iovs: i64, iovs_len: i64, nwritten: i64) -> i32
	l.Define(Module, "fd_write", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i32, i64, i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			fd := uint32(args[0])
			var w io.Writer
			switch fd {
			case 1:
				w = s.Stdout
			case 2:
				w = s.Stderr
			default:
				return []uint64{ErrnoBadf}, nil
			}
			iovs, n := args[1], args[2]
			var written uint64
			for i := uint64(0); i < n; i++ {
				base, err := inst.ReadU64(iovs + i*16)
				if err != nil {
					return []uint64{ErrnoFault}, nil
				}
				length, err := inst.ReadU64(iovs + i*16 + 8)
				if err != nil {
					return []uint64{ErrnoFault}, nil
				}
				buf, err := inst.ReadBytes(base, length)
				if err != nil {
					return []uint64{ErrnoFault}, nil
				}
				if _, err := w.Write(buf); err != nil {
					return []uint64{ErrnoInval}, nil
				}
				written += length
			}
			if err := inst.WriteU64(args[3], written); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			return []uint64{ErrnoSuccess}, nil
		},
	})

	// proc_exit(code: i32)
	l.Define(Module, "proc_exit", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i32}},
		Fn: func(_ *exec.Instance, args []uint64) ([]uint64, error) {
			return nil, &exec.Trap{Code: exec.TrapExit, ExitCode: int32(args[0])}
		},
	})

	// clock_time_get(id: i32, precision: i64, out: i64) -> i32
	l.Define(Module, "clock_time_get", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i32, i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			s.clock += 1000 // deterministic 1 µs per query
			if err := inst.WriteU64(args[2], s.clock); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			return []uint64{ErrnoSuccess}, nil
		},
	})

	// random_get(buf: i64, len: i64) -> i32
	l.Define(Module, "random_get", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			buf := make([]byte, args[1])
			for i := range buf {
				buf[i] = byte(s.next())
			}
			if err := inst.WriteBytes(args[0], buf); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			return []uint64{ErrnoSuccess}, nil
		},
	})

	// args_sizes_get(argc: i64, argv_buf_size: i64) -> i32
	l.Define(Module, "args_sizes_get", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			total := uint64(0)
			for _, a := range s.Args {
				total += uint64(len(a)) + 1
			}
			if err := inst.WriteU64(args[0], uint64(len(s.Args))); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			if err := inst.WriteU64(args[1], total); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			return []uint64{ErrnoSuccess}, nil
		},
	})

	// args_get(argv: i64, argv_buf: i64) -> i32
	l.Define(Module, "args_get", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			return writeStringTable(inst, s.Args, args[0], args[1])
		},
	})

	// environ_sizes_get / environ_get mirror the args pair.
	l.Define(Module, "environ_sizes_get", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			total := uint64(0)
			for _, e := range s.Env {
				total += uint64(len(e)) + 1
			}
			if err := inst.WriteU64(args[0], uint64(len(s.Env))); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			if err := inst.WriteU64(args[1], total); err != nil {
				return []uint64{ErrnoFault}, nil
			}
			return []uint64{ErrnoSuccess}, nil
		},
	})
	l.Define(Module, "environ_get", exec.HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{i64, i64}, Results: []wasm.ValType{i32}},
		Fn: func(inst *exec.Instance, args []uint64) ([]uint64, error) {
			return writeStringTable(inst, s.Env, args[0], args[1])
		},
	})
}

// writeStringTable lays out NUL-terminated strings at bufAddr and their
// pointers at tableAddr (the args_get/environ_get contract).
func writeStringTable(inst *exec.Instance, strs []string, tableAddr, bufAddr uint64) ([]uint64, error) {
	cursor := bufAddr
	for i, str := range strs {
		if err := inst.WriteU64(tableAddr+uint64(i)*8, cursor); err != nil {
			return []uint64{ErrnoFault}, nil
		}
		if err := inst.WriteBytes(cursor, append([]byte(str), 0)); err != nil {
			return []uint64{ErrnoFault}, nil
		}
		cursor += uint64(len(str)) + 1
	}
	return []uint64{ErrnoSuccess}, nil
}
