// Package exec executes Cage-extended wasm64 modules: an interpreter
// implementing the paper's small-step semantics (Fig. 11), three
// sandboxing strategies (32-bit guard pages, 64-bit software bounds
// checks, MTE-based tagging per Fig. 12b/13), pointer authentication for
// indirect calls (Figs. 9–11), and instruction-event accounting for the
// timing model.
//
// Execution runs over the lowered form of internal/ir: NewInstance
// lowers the module's functions once (or adopts a cached ir.Program
// via Config.Program) and Invoke drives a flat dispatch loop with
// pre-resolved branches and mode-specialized memory opcodes — the
// sandboxing strategy is baked into the instruction stream at lower
// time, so the hot path never branches on it. Each lowered opcode
// reports its fixed cost events, keeping the arch timing model exact.
//
// Paper map:
//
//   - NewInstance      — instantiation: linking, lowering, sandbox-tag
//     assignment and whole-memory tagging (Fig. 12b, the §7.2 startup
//     cost)
//   - Instance.Invoke  — execution with the Fig. 7/10/11 instruction
//     extension (segment.*, i64.pointer_sign / i64.pointer_auth)
//   - Instance.Reset   — instance recycling for pooled engines: restores
//     the freshly-instantiated state (memory, tags, PAC modifier)
//     without re-paying validation and precompilation
//   - Instance.Close   — teardown returning the sandbox tag to the
//     §6.4/§7.4 budget
//   - Trap             — the trap taxonomy embedders classify violations
//     with (tag mismatch, auth failure, bounds, segment misuse)
package exec
