package exec

import (
	"errors"
	"fmt"
	"sync"

	"cage/internal/wasm"
)

// HostFunc is a function provided by the embedder (e.g. WASI or the
// hardened allocator): a raw host slot. Args and results are raw 64-bit
// value bits. Most embedders define host functions through HostModule's
// typed adapters, which lower onto this form.
type HostFunc struct {
	Type wasm.FuncType
	Fn   HostFn
}

// Link-failure sentinels, carried by LinkError and matchable with
// errors.Is.
var (
	// ErrUnresolvedImport marks an import no host module provides.
	ErrUnresolvedImport = errors.New("unresolved import")
	// ErrImportTypeMismatch marks an import whose host signature does
	// not match the module's declared type.
	ErrImportTypeMismatch = errors.New("import type mismatch")
)

// LinkError is a structured instantiation-time link failure: which
// import failed (module/name), what the guest required, and — for type
// mismatches — what the host offered. It wraps ErrUnresolvedImport or
// ErrImportTypeMismatch for errors.Is dispatch.
type LinkError struct {
	// Module and Name identify the failing import.
	Module, Name string
	// Want is the function type the guest module declares.
	Want wasm.FuncType
	// Have is the host function's type (zero for unresolved imports).
	Have wasm.FuncType
	// Err is ErrUnresolvedImport or ErrImportTypeMismatch.
	Err error
}

// Error implements the error interface.
func (e *LinkError) Error() string {
	if errors.Is(e.Err, ErrImportTypeMismatch) {
		return fmt.Sprintf("exec: import %s.%s: host type %v does not match %v",
			e.Module, e.Name, e.Have, e.Want)
	}
	return fmt.Sprintf("exec: unresolved import %s.%s (want %v)", e.Module, e.Name, e.Want)
}

// Unwrap exposes the sentinel to errors.Is.
func (e *LinkError) Unwrap() error { return e.Err }

// linkKey keys host functions by the (module, name) pair. A struct key
// cannot collide the way the historical module+"."+name string did
// (module "a.b"/func "c" vs module "a"/func "b.c").
type linkKey struct {
	module, name string
}

// Linker resolves module imports to host functions. It is the low-level
// registry beneath HostModule: embedders outside this package assemble
// HostModules and hand them to Config.HostModules or ResolveImports
// instead of building Linkers. All methods are safe for concurrent use;
// Define after instantiation is race-free (resolution snapshots into an
// ImportTable, and lookups lock).
type Linker struct {
	mu    sync.RWMutex
	funcs map[linkKey]HostFunc
}

// NewLinker creates an empty linker.
func NewLinker() *Linker {
	return &Linker{funcs: make(map[linkKey]HostFunc)}
}

// Define registers a host function under (module, name), replacing any
// previous definition.
func (l *Linker) Define(module, name string, fn HostFunc) {
	l.mu.Lock()
	l.funcs[linkKey{module, name}] = fn
	l.mu.Unlock()
}

// AddModule merges a host module's functions into the linker and
// freezes the module (its definition set is now part of resolved import
// tables). Two modules sharing an import-module name may both
// contribute — embedders extend "env" alongside the built-ins this way
// — but defining the same (module, name) twice is an error.
func (l *Linker) AddModule(hm *HostModule) error {
	hm.Freeze()
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, name := range hm.names {
		k := linkKey{hm.name, name}
		if _, dup := l.funcs[k]; dup {
			return fmt.Errorf("exec: host function %s.%s defined twice", hm.name, name)
		}
		l.funcs[k] = hm.funcs[name]
	}
	return nil
}

// Lookup resolves (module, name).
func (l *Linker) Lookup(module, name string) (HostFunc, bool) {
	l.mu.RLock()
	fn, ok := l.funcs[linkKey{module, name}]
	l.mu.RUnlock()
	return fn, ok
}

// ImportTable is a resolved import list for one module: the result of
// linking, snapshotted so every instance of the module — pooled or
// fresh — shares one immutable table instead of re-resolving (and
// re-checking) each import per instantiation.
type ImportTable struct {
	funcs []HostFunc
	types []wasm.FuncType
}

// Resolve links every import of m against the linker, returning the
// snapshot or the first structured LinkError.
func (l *Linker) Resolve(m *wasm.Module) (*ImportTable, error) {
	t := &ImportTable{}
	for _, im := range m.Imports {
		want := m.Types[im.TypeIdx]
		fn, ok := l.Lookup(im.Module, im.Name)
		if !ok {
			return nil, &LinkError{Module: im.Module, Name: im.Name, Want: want, Err: ErrUnresolvedImport}
		}
		if !fn.Type.Equal(want) {
			return nil, &LinkError{Module: im.Module, Name: im.Name, Want: want, Have: fn.Type, Err: ErrImportTypeMismatch}
		}
		t.funcs = append(t.funcs, fn)
		t.types = append(t.types, want)
	}
	return t, nil
}

// ResolveImports links m against the given host modules (freezing
// them), returning the shareable import-table snapshot. It is the one
// linking entry point for embedders: no Linker surfaces outside this
// package.
func ResolveImports(m *wasm.Module, mods ...*HostModule) (*ImportTable, error) {
	l := NewLinker()
	for _, hm := range mods {
		if err := l.AddModule(hm); err != nil {
			return nil, err
		}
	}
	return l.Resolve(m)
}

// matches verifies the snapshot still fits module m (same import count
// and types), guarding against a table cached for a different module.
func (t *ImportTable) matches(m *wasm.Module) error {
	if len(t.types) != len(m.Imports) {
		return fmt.Errorf("exec: import table has %d entries, module declares %d imports",
			len(t.types), len(m.Imports))
	}
	for i, im := range m.Imports {
		if !t.types[i].Equal(m.Types[im.TypeIdx]) {
			return fmt.Errorf("exec: import table entry %d (%s.%s) has type %v, module wants %v",
				i, im.Module, im.Name, t.types[i], m.Types[im.TypeIdx])
		}
	}
	return nil
}
