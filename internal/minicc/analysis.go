package minicc

// Stack-allocation hardening analysis — the reproduction of the paper's
// Algorithm 1 ("Detect and harden safe and unsafe stack allocations"):
//
//	foreach alloc ∈ allocations:
//	    if escapes(alloc)            -> instrument
//	    else if isUsedByUnsafeGEP(alloc) -> instrument
//	foreach alloc ∈ allocsToInstrument: insert tagging/untagging code
//	if any instrumented and the frame-boundary slot is tagged:
//	    insert an untagged guard slot (paper Fig. 8b)
//
// The analysis runs after type checking, mirroring the paper's choice to
// run the sanitizer after optimizations so it never blocks passes like
// mem2reg (§6.1): scalars that are never address-taken stay in wasm
// locals (registers) and are not allocations at all.

// runStackAnalysis computes fn.StackAllocs, per-symbol Instrument flags,
// and the guard-slot decision.
func runStackAnalysis(fn *FuncDecl, layout Layout) {
	// An "allocation" is a local needing linear-memory backing: arrays,
	// structs, and address-taken scalars (everything else lives in wasm
	// locals, i.e., registers).
	for _, sym := range fn.Locals {
		switch {
		case sym.Type.Kind == KArray || sym.Type.Kind == KStruct:
			fn.StackAllocs = append(fn.StackAllocs, sym)
		case sym.AddrTaken && sym.Type.IsScalar():
			fn.StackAllocs = append(fn.StackAllocs, sym)
			// An address-taken scalar escapes by definition here: its
			// address is consumed somewhere.
			sym.Escapes = true
		}
	}
	if len(fn.StackAllocs) == 0 {
		return
	}
	a := &stackAnalysis{layout: layout}
	a.walkStmt(fn.Body)
	any := false
	for _, sym := range fn.StackAllocs {
		sym.Instrument = sym.Escapes || sym.UnsafeGEP
		any = any || sym.Instrument
	}
	// Guard slot (Fig. 8b): needed when the slot at the frame boundary
	// (the first allocation) is itself tagged; an untagged first slot
	// already separates this frame's tags from the previous frame's.
	if any && fn.StackAllocs[0].Instrument {
		fn.NeedsGuardSlot = true
	}
}

type stackAnalysis struct {
	layout Layout
}

func (a *stackAnalysis) walkStmt(st Stmt) {
	switch n := st.(type) {
	case *BlockStmt:
		for _, s := range n.Stmts {
			a.walkStmt(s)
		}
	case *DeclStmt:
		if n.Init != nil {
			a.walkExpr(n.Init, false)
		}
	case *ExprStmt:
		if n.X != nil {
			a.walkExpr(n.X, false)
		}
	case *IfStmt:
		a.walkExpr(n.Cond, false)
		a.walkStmt(n.Then)
		if n.Else != nil {
			a.walkStmt(n.Else)
		}
	case *ForStmt:
		if n.Init != nil {
			a.walkStmt(n.Init)
		}
		if n.Cond != nil {
			a.walkExpr(n.Cond, false)
		}
		if n.Post != nil {
			a.walkExpr(n.Post, false)
		}
		a.walkStmt(n.Body)
	case *WhileStmt:
		a.walkExpr(n.Cond, false)
		a.walkStmt(n.Body)
	case *ReturnStmt:
		if n.X != nil {
			a.walkExpr(n.X, false)
		}
	}
}

// walkExpr visits e; inAccessBase marks that the immediate consumer is
// an Index/Member access base, the only use that keeps an aggregate
// from escaping.
func (a *stackAnalysis) walkExpr(e Expr, inAccessBase bool) {
	switch n := e.(type) {
	case *Ident:
		if n.Sym == nil {
			return
		}
		if n.Sym.Type.Kind == KArray || n.Sym.Type.Kind == KStruct {
			if !inAccessBase {
				// The aggregate's address leaves the access pattern:
				// array decay into a call argument, assignment, pointer
				// arithmetic... -> escapes(alloc).
				n.Sym.Escapes = true
			}
		}
	case *Unary:
		if n.Op == "&" {
			// Address-of: escape of the root allocation.
			if root := rootSymbol(n.X); root != nil {
				root.Escapes = true
			}
			a.walkExpr(n.X, true)
			return
		}
		a.walkExpr(n.X, false)
	case *Postfix:
		a.walkExpr(n.X, false)
	case *Binary:
		a.walkExpr(n.X, false)
		a.walkExpr(n.Y, false)
	case *Assign:
		a.walkExpr(n.LHS, false)
		a.walkExpr(n.RHS, false)
	case *Cond:
		a.walkExpr(n.C, false)
		a.walkExpr(n.T, false)
		a.walkExpr(n.F, false)
	case *Index:
		// isUsedByUnsafeGEP: a non-constant or out-of-bounds constant
		// index makes the allocation unsafe; a constant in-bounds index
		// is statically verifiable (paper Alg. 1).
		if root := rootSymbol(n.X); root != nil {
			if lit, ok := n.Idx.(*IntLit); ok {
				bt := n.X.Type()
				if bt.Kind != KArray || lit.Val < 0 || lit.Val >= bt.ArrayLen {
					root.UnsafeGEP = true
				}
			} else {
				root.UnsafeGEP = true
			}
		}
		a.walkExpr(n.X, true)
		a.walkExpr(n.Idx, false)
	case *Member:
		// Member offsets are static and in-bounds: safe use.
		a.walkExpr(n.X, !n.Arrow)
	case *Call:
		for _, arg := range n.Args {
			a.walkExpr(arg, false)
		}
		if _, isIdent := n.Fun.(*Ident); !isIdent {
			a.walkExpr(n.Fun, false)
		}
	case *Cast:
		a.walkExpr(n.X, false)
	case *SizeofExpr:
		// sizeof does not evaluate its operand: safe.
	}
}

// rootSymbol finds the local allocation an access chain bottoms out in,
// or nil for globals/pointers.
func rootSymbol(e Expr) *Symbol {
	switch n := e.(type) {
	case *Ident:
		if n.Sym != nil && (n.Sym.Kind == SymLocal || n.Sym.Kind == SymParam) {
			return n.Sym
		}
	case *Index:
		return rootSymbol(n.X)
	case *Member:
		if !n.Arrow {
			return rootSymbol(n.X)
		}
	}
	return nil
}
