package bench

import (
	"encoding/json"
	"testing"
)

// TestMitigationVariants pins the hardened twin: identical to the Cage
// row in everything but its name and the SpectreHarden bit.
func TestMitigationVariants(t *testing.T) {
	full, hard := MitigationVariants()
	if full.Name != "Cage" {
		t.Fatalf("full variant %q, want the Table 3 Cage row", full.Name)
	}
	if hard.Name != "Cage-hardened" {
		t.Errorf("hardened variant named %q", hard.Name)
	}
	if !hard.Features.SpectreHarden {
		t.Error("hardened variant lost SpectreHarden")
	}
	want := full
	want.Name = hard.Name
	want.Features.SpectreHarden = true
	if hard != want {
		t.Errorf("hardened variant %+v differs beyond name+SpectreHarden from %+v", hard, want)
	}
}

// TestMeasureMitigationQuick runs the quick sweep and pins the record's
// invariants: bit-identical results, a strictly positive fuel tax, and
// nonzero mitigation events on every kernel.
func TestMeasureMitigationQuick(t *testing.T) {
	rec, err := MeasureMitigation(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Kernels) == 0 {
		t.Fatal("no kernels measured")
	}
	for _, mk := range rec.Kernels {
		if !mk.ResultsIdentical {
			t.Errorf("%s: hardened results differ from full", mk.Kernel)
		}
		if mk.HardenedFuel <= mk.FullFuel {
			t.Errorf("%s: hardened fuel %d not above full %d", mk.Kernel, mk.HardenedFuel, mk.FullFuel)
		}
		if mk.FuelTaxPct <= 0 {
			t.Errorf("%s: fuel tax %.3f%%, want > 0", mk.Kernel, mk.FuelTaxPct)
		}
		if mk.FenceEvents == 0 || mk.BTBFlushEvents == 0 {
			t.Errorf("%s: mitigation events fence=%d btb_flush=%d, want both nonzero",
				mk.Kernel, mk.FenceEvents, mk.BTBFlushEvents)
		}
		for core, tax := range mk.CycleTaxPct {
			if tax <= 0 {
				t.Errorf("%s: cycle tax on %s is %.3f%%, want > 0", mk.Kernel, core, tax)
			}
		}
	}
	// The record must embed into the -json document shape.
	var buf []byte
	rep := JSONReport{Schema: JSONSchema, Quick: true, Mitigation: rec}
	buf, err = json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded JSONReport
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Mitigation == nil || len(decoded.Mitigation.Kernels) != len(rec.Kernels) {
		t.Fatal("mitigation record did not round-trip through JSONReport")
	}
}
