// Command cage-loadgen drives a cage-serve daemon to saturation and
// emits the measurement as a cage-bench/v2-compatible JSON document
// (the "saturation" record): p50/p99 request latency and throughput
// versus client concurrency.
//
// With no -addr it self-hosts the full sweep: a live cage-serve is
// stood up (real loopback HTTP) for each of the four sandbox presets
// (baseline32, baseline64, sandbox, full), the built-in sum workload is
// registered through the upload path, and every concurrency level is
// measured — the repo's top-line trajectory artifact, archived by CI.
//
// With -addr it sweeps an already-running daemon instead, uploading
// -source (or using -module) and labeling the points with -label.
//
// With -scaling it emits the "scaling" record instead: a same-binary
// A/B of the serve hot path — the pre-scale-out configuration (mutexed
// engine caches, condvar-only pool checkout, allocating handler)
// against the sharded/lock-free/zero-alloc path — across GOMAXPROCS ×
// concurrency, driven in-process so the serve path rather than loopback
// TCP is what gets priced.
//
// Usage:
//
//	cage-loadgen [-quick] [-o out.json]
//	cage-loadgen -scaling [-quick] [-o out.json]
//	cage-loadgen -addr http://host:8080 [-label full] [-tenant name]
//	             [-source file.c | -module sha256:…] [-fn run] [-arg n]
//	             [-concurrency 1,2,4,8,16,32] [-requests 50]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"cage/internal/bench"
	"cage/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "base URL of a running cage-serve (empty = self-host all presets)")
	label := flag.String("label", "custom", "config label for the emitted points (with -addr)")
	tenant := flag.String("tenant", "bench", "tenant name sent as X-Cage-Tenant")
	source := flag.String("source", "", "MiniC source file to upload as the workload (with -addr)")
	module := flag.String("module", "", "already-registered module id to invoke instead of uploading (with -addr)")
	fn := flag.String("fn", "run", "exported function to invoke")
	arg := flag.Uint64("arg", 4096, "single integer argument passed to the function")
	levels := flag.String("concurrency", "1,2,4,8,16,32", "comma-separated concurrency levels")
	requests := flag.Int("requests", 50, "requests per client at each level")
	quick := flag.Bool("quick", false, "CI smoke shape: small workload, few levels, few requests")
	scaling := flag.Bool("scaling", false, "emit the multicore scale-out A/B (locked vs fast serve path) instead of the saturation sweep")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	doc := bench.JSONReport{Schema: bench.JSONSchema, Quick: *quick}
	if *scaling {
		rec, err := serve.MeasureScaling(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-loadgen: %v\n", err)
			os.Exit(1)
		}
		doc.Scaling = rec
	} else {
		rec, err := measure(*addr, *label, *tenant, *source, *module, *fn, *arg, *levels, *requests, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-loadgen: %v\n", err)
			os.Exit(1)
		}
		doc.Saturation = rec
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-loadgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintf(os.Stderr, "cage-loadgen: %v\n", err)
		os.Exit(1)
	}
}

func measure(addr, label, tenant, source, module, fn string, arg uint64, levels string, requests int, quick bool) (*bench.SaturationRecord, error) {
	if addr == "" {
		return serve.MeasureSaturation(quick)
	}

	cc, err := parseLevels(levels)
	if err != nil {
		return nil, err
	}
	client := &serve.Client{BaseURL: addr, Tenant: tenant}
	id := module
	if id == "" {
		if source == "" {
			return nil, fmt.Errorf("with -addr, provide -source or -module")
		}
		src, err := os.ReadFile(source)
		if err != nil {
			return nil, err
		}
		if id, err = client.Upload(src); err != nil {
			return nil, err
		}
	}
	req := serve.InvokeRequest{Module: id, Function: fn, Args: []uint64{arg}}
	rec := &bench.SaturationRecord{Workload: fn, N: int(arg), RequestsPerClient: requests}
	for _, c := range cc {
		lr := serve.RunLoad(client, req, c, c*requests)
		rec.Points = append(rec.Points, bench.SaturationPoint{
			Config:        label,
			Concurrency:   c,
			Requests:      lr.Requests,
			Errors:        lr.Errors,
			P50Ns:         lr.P50.Nanoseconds(),
			P99Ns:         lr.P99.Nanoseconds(),
			ThroughputRPS: lr.Throughput,
		})
	}
	return rec, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}
