// Metering: bound untrusted guest execution with the context-first
// Call API — deterministic fuel budgets, wall-clock timeouts, and the
// per-call resource telemetry the Result carries.
//
// The demo runs the same engine three ways: a well-behaved workload
// reporting its fuel bill, the same workload under a too-small fuel
// budget (trapping deterministically), and a guest infinite loop
// interrupted by a 100ms timeout — after which the pooled instance is
// reused as if nothing happened.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cage"
)

const program = `
long work(long n) {
    long s = 0;
    for (long i = 0; i < n; i++) { s = s + i * i; }
    return s;
}

// An infinite loop: the denial-of-service shape a hosted runtime must
// survive. Only a timeout (or fuel budget) gets control back.
long spin(long n) {
    while (1) { n = n + 1; }
    return n;
}
`

func main() {
	eng := cage.NewEngine(cage.FullHardening())
	defer eng.Close()
	mod, err := eng.CompileSource(program)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. A normal call: the Result reports the values, the fuel bill
	// (timing-model events), and the event breakdown.
	res, err := eng.Call(ctx, mod, "work", []uint64{10000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("work(10000) = %d, consumed %d fuel\n", int64(res.Values[0]), res.Fuel)

	// 2. The same call under a quarter of that budget: deterministic
	// TrapFuelExhausted, at the same guest instruction every run.
	budget := res.Fuel / 4
	res2, err := eng.Call(ctx, mod, "work", []uint64{10000}, cage.WithFuel(budget))
	fmt.Printf("work(10000) with %d fuel: %v (used %d)\n", budget, err, res2.Fuel)
	if !cage.IsFuelExhausted(err) {
		log.Fatal("expected fuel exhaustion")
	}

	// 3. A guest infinite loop under a 100ms timeout: interrupted at the
	// next branch checkpoint; the trap wraps context.DeadlineExceeded.
	start := time.Now()
	_, err = eng.Call(ctx, mod, "spin", []uint64{0}, cage.WithTimeout(100*time.Millisecond))
	fmt.Printf("spin() with 100ms timeout: %v (after %v)\n", err, time.Since(start).Round(time.Millisecond))
	if !cage.IsInterrupted(err) {
		log.Fatal("expected interruption")
	}

	// The interrupted instance was reset on checkin — the pool slot is
	// not poisoned and the §7.4 sandbox tag is not leaked.
	res, err = eng.Call(ctx, mod, "work", []uint64{100})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("work(100) after the interrupt = %d (pool reuse ok)\n", int64(res.Values[0]))
}
