package bench

import (
	"fmt"
	"io"
	"time"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/exploit"
	"cage/internal/mte"
	"cage/internal/wasm"
)

// --- Table 1 ---

// Table1Rows runs the instruction microbenchmarks on every core.
func Table1Rows(n int) map[string][]arch.InstMeasurement {
	out := make(map[string][]arch.InstMeasurement)
	for _, c := range arch.Cores() {
		out[c.Name] = c.MeasureAll(n)
	}
	return out
}

// Table1Report prints the paper's Table 1 layout.
func Table1Report(w io.Writer) {
	const n = 1_000_000 // scaled from the paper's 1e10 instructions
	cores := arch.Cores()
	rows := Table1Rows(n)
	t := &table{header: []string{"Inst", "X3 Tp", "X3 Lat", "A715 Tp", "A715 Lat", "A510 Tp", "A510 Lat"}}
	classes := append(append([]arch.InstClass{}, arch.MTEInstClasses...), arch.PACInstClasses...)
	for i, cl := range classes {
		cells := []string{cl.String()}
		for _, c := range cores {
			m := rows[c.Name][i]
			cells = append(cells, fmt.Sprintf("%.2f", m.Throughput))
			if cl.HasLatencyRow() {
				cells = append(cells, fmt.Sprintf("%.2f", m.Latency))
			} else {
				cells = append(cells, "-")
			}
		}
		t.add(cells...)
	}
	t.write(w)
}

// --- Fig. 4 ---

// Fig4Row is one core's memset runtimes under the three MTE modes.
type Fig4Row struct {
	Core                    string
	NoneMs, AsyncMs, SyncMs float64
}

// Fig4Rows models the 128 MiB memset of paper Fig. 4.
func Fig4Rows() []Fig4Row {
	const size = 128 << 20
	var rows []Fig4Row
	for _, c := range arch.Cores() {
		rows = append(rows, Fig4Row{
			Core:    c.Name,
			NoneMs:  c.Millis(c.MemsetCycles(size, mte.ModeDisabled)),
			AsyncMs: c.Millis(c.MemsetCycles(size, mte.ModeAsync)),
			SyncMs:  c.Millis(c.MemsetCycles(size, mte.ModeSync)),
		})
	}
	return rows
}

// Fig4Report prints the Fig. 4 series with overhead percentages.
func Fig4Report(w io.Writer) {
	t := &table{header: []string{"Core", "none (ms)", "async (ms)", "sync (ms)", "async ovh", "sync ovh"}}
	for _, r := range Fig4Rows() {
		t.add(r.Core,
			fmt.Sprintf("%.1f", r.NoneMs),
			fmt.Sprintf("%.1f", r.AsyncMs),
			fmt.Sprintf("%.1f", r.SyncMs),
			fmt.Sprintf("%.1f%%", 100*(r.AsyncMs/r.NoneMs-1)),
			fmt.Sprintf("%.1f%%", 100*(r.SyncMs/r.NoneMs-1)))
	}
	t.write(w)
}

// --- Fig. 16 / Table 4 ---

// Fig16Cell is one (core, variant) runtime.
type Fig16Cell struct {
	Core    string
	Variant arch.InitVariant
	Ms      float64
}

// Fig16Cells models initializing 128 MiB with each Table 4 variant.
func Fig16Cells() []Fig16Cell {
	const size = 128 << 20
	var out []Fig16Cell
	for _, c := range arch.Cores() {
		for _, v := range arch.AllInitVariants {
			out = append(out, Fig16Cell{Core: c.Name, Variant: v, Ms: c.Millis(c.InitCycles(size, v))})
		}
	}
	return out
}

// Fig16Report prints Table 4's attribute columns plus the Fig. 16
// runtimes.
func Fig16Report(w io.Writer) {
	t := &table{header: []string{"Variant", "Granule", "Sets 0", "memset", "X3 (ms)", "A715 (ms)", "A510 (ms)"}}
	cells := Fig16Cells()
	ms := func(coreName string, v arch.InitVariant) float64 {
		for _, c := range cells {
			if c.Core == coreName && c.Variant == v {
				return c.Ms
			}
		}
		return 0
	}
	for _, v := range arch.AllInitVariants {
		granule := "-"
		if op, ok := v.TagStoreOp(); ok {
			granule = fmt.Sprintf("%d bytes", op.Granules()*mte.GranuleSize)
		}
		t.add(v.String(), granule, yesNo(v.SetsZero()), yesNo(v.UsesMemset()),
			fmt.Sprintf("%.1f", ms("Cortex-X3", v)),
			fmt.Sprintf("%.1f", ms("Cortex-A715", v)),
			fmt.Sprintf("%.1f", ms("Cortex-A510", v)))
	}
	t.write(w)
}

func yesNo(b bool) string {
	if b {
		return "Yes"
	}
	return "No"
}

// --- Table 2 ---

// Table2Row is one CVE case-study outcome pair.
type Table2Row struct {
	CVE               string
	Cause             string
	MitigatedBaseline string
	BaselineDamage    int64
	CageTrapped       bool
	CageTrap          string
}

// Table2Rows runs every exploit under baseline and Cage.
func Table2Rows() ([]Table2Row, error) {
	var rows []Table2Row
	for _, cs := range exploit.Cases() {
		base, err := exploit.Run(cs, false)
		if err != nil {
			return nil, err
		}
		caged, err := exploit.Run(cs, true)
		if err != nil {
			return nil, err
		}
		trapName := ""
		if caged.Trapped {
			trapName = (&exec.Trap{Code: caged.TrapCode}).Error()
		}
		rows = append(rows, Table2Row{
			CVE: cs.CVE, Cause: cs.Cause, MitigatedBaseline: cs.MitigatedBaseline,
			BaselineDamage: base.Damage, CageTrapped: caged.Trapped, CageTrap: trapName,
		})
	}
	return rows, nil
}

// Table2Report prints the mitigation matrix.
func Table2Report(w io.Writer) error {
	rows, err := Table2Rows()
	if err != nil {
		return err
	}
	t := &table{header: []string{"CVE", "Cause", "Mitigated in WASM", "Baseline outcome", "Cage outcome"}}
	for _, r := range rows {
		baseline := "exploited"
		if r.BaselineDamage == 0 {
			baseline = "benign"
		}
		cage := "NOT MITIGATED"
		if r.CageTrapped {
			cage = "trapped (" + r.CageTrap + ")"
		}
		t.add(r.CVE, r.Cause, r.MitigatedBaseline, baseline, cage)
	}
	t.write(w)
	return nil
}

// --- §7.2 startup ---

// StartupResult quantifies instance startup with a 128 MiB memory.
type StartupResult struct {
	// TaggingMs models tagging the linear memory per core (stg stream).
	TaggingMs map[string]float64
	// GranulesTagged is the measured tag-store work at instantiation.
	GranulesTagged uint64
	// WallClock is the host-side instantiation + empty call time.
	WallClock time.Duration
}

// RunStartup instantiates a module with a 128 MiB linear memory under
// MTE sandboxing and calls an empty export (paper §7.2 methodology).
func RunStartup() (*StartupResult, error) {
	const pages = (128 << 20) / wasm.PageSize
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: pages, Max: pages, HasMax: true}, Memory64: true}}
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{wasm.End()}}}
	m.Exports = []wasm.Export{{Name: "empty", Kind: wasm.ExportFunc, Idx: 0}}

	start := time.Now()
	inst, err := exec.NewInstance(m, exec.Config{
		Features: core.Features{Sandbox: true, MTEMode: mte.ModeSync},
		Seed:     5,
	})
	if err != nil {
		return nil, err
	}
	if _, err := inst.Invoke("empty"); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	res := &StartupResult{
		TaggingMs:      make(map[string]float64),
		GranulesTagged: inst.StartupGranulesTagged,
		WallClock:      wall,
	}
	for _, c := range arch.Cores() {
		res.TaggingMs[c.Name] = c.Millis(c.TagRegionCycles(res.GranulesTagged * mte.GranuleSize))
	}
	return res, nil
}

// StartupReport prints the startup accounting, including the Table 4
// ablation: which initialization primitive a runtime should pick for
// fresh, zeroed, tagged linear memory.
func StartupReport(w io.Writer) error {
	res, err := RunStartup()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "granules tagged at instantiation: %d (128 MiB)\n", res.GranulesTagged)
	for _, c := range arch.Cores() {
		fmt.Fprintf(w, "  %-12s modeled tagging cost: %.1f ms\n", c.Name, res.TaggingMs[c.Name])
	}
	fmt.Fprintf(w, "host instantiation wall clock: %v\n", res.WallClock)
	fmt.Fprintln(w, "(the paper observes the tagging cost is hidden by runtime startup)")

	// Ablation: initializing zeroed+tagged memory with stzg beats the
	// naive tag-then-memset sequence on every core (Table 4 / Fig. 16
	// applied to instance startup).
	size := res.GranulesTagged * mte.GranuleSize
	fmt.Fprintln(w, "initialization-primitive ablation (zeroed + tagged memory):")
	for _, c := range arch.Cores() {
		naive := c.Millis(c.InitCycles(size, arch.InitSTGMemset))
		smart := c.Millis(c.InitCycles(size, arch.InitSTZG))
		fmt.Fprintf(w, "  %-12s stg+memset %.1f ms -> stzg %.1f ms (%.0f%% saved)\n",
			c.Name, naive, smart, 100*(1-smart/naive))
	}
	return nil
}

// --- §7.3 memory overhead ---

// MemoryResult is the §7.3 accounting.
type MemoryResult struct {
	// Wasm64OverWasm32 is the measured data-footprint overhead of
	// switching pointer widths.
	Wasm64OverWasm32 float64
	// TagStorage is MTE's architectural 1/32 tag-space cost.
	TagStorage float64
	// Total is the estimated combined overhead (paper: < 5.3 %).
	Total float64
	// AllocatorMetadata is the hardened allocator's live metadata per
	// payload byte for the measured workloads.
	AllocatorMetadata float64
}

// MemoryReport prints the §7.3 estimate.
func MemoryReport(w io.Writer, quick bool) error {
	res, err := RunMemoryOverhead(quick)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "wasm64 over wasm32 data footprint: %+.2f%%\n", 100*res.Wasm64OverWasm32)
	fmt.Fprintf(w, "MTE tag storage (4 bits / 16 bytes): %.3f%%\n", 100*res.TagStorage)
	fmt.Fprintf(w, "allocator metadata overhead: %.2f%%\n", 100*res.AllocatorMetadata)
	fmt.Fprintf(w, "estimated total memory overhead: %.2f%% (paper: < 5.3%%)\n", 100*res.Total)
	return nil
}

// TagStorageOverhead re-exports the architectural constant.
func TagStorageOverhead() float64 { return alloc.TagStorageOverhead() }
