package wasm

import (
	"errors"
	"fmt"
)

// LEB128 variable-length integer encoding used throughout the binary
// format.

var errLEBOverflow = errors.New("wasm: LEB128 value overflows")

func appendULEB(dst []byte, v uint64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if v != 0 {
			dst = append(dst, b|0x80)
		} else {
			return append(dst, b)
		}
	}
}

func appendSLEB(dst []byte, v int64) []byte {
	for {
		b := byte(v & 0x7F)
		v >>= 7
		if (v == 0 && b&0x40 == 0) || (v == -1 && b&0x40 != 0) {
			return append(dst, b)
		}
		dst = append(dst, b|0x80)
	}
}

// reader is a simple cursor over the binary image.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) eof() bool { return r.pos >= len(r.buf) }

func (r *reader) byte() (byte, error) {
	if r.eof() {
		return 0, fmt.Errorf("wasm: unexpected end of binary at offset %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, fmt.Errorf("wasm: truncated binary: need %d bytes at offset %d", n, r.pos)
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *reader) uleb() (uint64, error) {
	var v uint64
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		if shift >= 64 || (shift == 63 && b > 1) {
			return 0, errLEBOverflow
		}
		v |= uint64(b&0x7F) << shift
		if b&0x80 == 0 {
			return v, nil
		}
		shift += 7
	}
}

func (r *reader) uleb32() (uint32, error) {
	v, err := r.uleb()
	if err != nil {
		return 0, err
	}
	if v > 0xFFFFFFFF {
		return 0, errLEBOverflow
	}
	return uint32(v), nil
}

func (r *reader) sleb() (int64, error) {
	var v int64
	var shift uint
	for {
		b, err := r.byte()
		if err != nil {
			return 0, err
		}
		if shift >= 64 {
			return 0, errLEBOverflow
		}
		v |= int64(b&0x7F) << shift
		shift += 7
		if b&0x80 == 0 {
			if shift < 64 && b&0x40 != 0 {
				v |= -1 << shift
			}
			return v, nil
		}
	}
}

func (r *reader) name() (string, error) {
	n, err := r.uleb32()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}
