package arch

// Pipeline microbenchmark simulator regenerating paper Table 1.
//
// The paper measures instruction throughput by executing 1e10 instances
// of an instruction in an unrolled loop with no data dependencies, and
// latency by forcing each instance to depend on the previous one. The
// simulation reproduces both experiments over the OpTiming parameters: a
// scoreboard issues up to IssueWidth instructions per cycle, each class
// has Units effective execution units with initiation interval II, and a
// dependent instruction cannot start before its producer's result is
// Latency cycles old.

// MeasureThroughput simulates n independent instructions of class cl and
// returns the achieved instructions/cycle.
func (c *Core) MeasureThroughput(cl InstClass, n int) float64 {
	t := c.timing(cl)
	if n <= 0 {
		return 0
	}
	// Unit-limited issue: one unit accepts an op every II cycles.
	unitCycles := float64(n) * t.II / t.Units
	// Front-end limited issue.
	frontCycles := float64(n) / c.IssueWidth
	cycles := unitCycles
	if frontCycles > cycles {
		cycles = frontCycles
	}
	return float64(n) / cycles
}

// MeasureLatency simulates a chain of n dependent instructions of class
// cl and returns the observed per-instruction latency in cycles.
func (c *Core) MeasureLatency(cl InstClass, n int) float64 {
	t := c.timing(cl)
	if n <= 0 {
		return 0
	}
	// Each link must wait for the previous result; issue itself costs at
	// least one initiation interval per unit when the chain is serial.
	per := t.Latency
	if min := t.II / t.Units; per < min {
		per = min
	}
	return (float64(n) * per) / float64(n)
}

// InstMeasurement is one Table 1 row cell pair for a core.
type InstMeasurement struct {
	Class      InstClass
	Throughput float64 // instructions per cycle (higher is better)
	Latency    float64 // cycles (lower is better); 0 when not measured
}

// MeasureAll runs the Table 1 microbenchmarks (throughput for every
// class, latency only where the paper reports one) with n instructions.
func (c *Core) MeasureAll(n int) []InstMeasurement {
	classes := append(append([]InstClass{}, MTEInstClasses...), PACInstClasses...)
	out := make([]InstMeasurement, 0, len(classes))
	for _, cl := range classes {
		m := InstMeasurement{Class: cl, Throughput: c.MeasureThroughput(cl, n)}
		if cl.HasLatencyRow() {
			m.Latency = c.MeasureLatency(cl, n)
		}
		out = append(out, m)
	}
	return out
}
