// Package exec executes Cage-extended wasm64 modules: an interpreter
// implementing the paper's small-step semantics (Fig. 11), three
// sandboxing strategies (32-bit guard pages, 64-bit software bounds
// checks, MTE-based tagging per Fig. 12b/13), pointer authentication for
// indirect calls (Figs. 9–11), and instruction-event accounting for the
// timing model.
//
// # The frame machine
//
// Execution runs over the lowered form of internal/ir: NewInstance
// lowers the module's functions once (or adopts a cached ir.Program via
// Config.Program), and invocation drives a frame machine (frame.go) —
// one flat dispatch loop over a single reusable per-instance value
// arena. Each lowered function carries a FrameSize computed at lower
// time, and one activation occupies exactly that many contiguous
// []uint64 slots: parameters, declared locals, then the operand stack.
//
// Guest→guest calls never recurse through Go and never allocate. A call
// pushes a typed frame record and opens the callee's frame at the
// caller's operand-stack top, so the arguments already sit in the
// callee's parameter slots — no copy; a return slides the results down
// over the dead frame, landing exactly where the caller expects its
// stack top. The arena and the frame-record stack retain their capacity
// across calls and across Reset, which makes the pooled
// checkout→call→checkin cycle steady-state allocation-free (CI gates
// this with testing.AllocsPerRun), and deep wasm recursion consumes
// arena slots, not Go stack.
//
// The resource bounds are exact: MaxCallDepth counts live activations
// (guest frames plus in-flight host crossings) and MaxStackWords counts
// arena slots, and exceeding either traps with TrapStackOverflow at a
// deterministic frame count and size — not whenever Go's stack happens
// to run out. Both have per-call overrides (CallOptions).
//
// Go recursion and allocation survive only at the sandbox boundary:
// invoke copies the embedder's args into the entry frame and the
// results back out, and each such entry is a re-entry barrier — a host
// function that re-enters the guest through HostContext.Call stacks its
// frames above the live arena top, and the barrier state is restored
// however the inner run unwinds, so the outer activation always
// resumes intact.
//
// Branches carry absolute target PCs and precomputed stack repair, the
// sandboxing strategy is baked into mode-specialized memory opcodes at
// lower time, and each opcode reports its fixed cost events, keeping
// the arch timing model exact — the legacy-oracle differential suite
// holds the frame machine to identical results, traps, and event
// counts.
//
// # Interruption points
//
// InvokeWith is the bounded-call entry (call.go): it arms a per-call
// meter carrying an atomic interrupt flag (set by a context watcher
// goroutine) and a fuel limit measured in timing-model events. The
// dispatch loop polls the meter at every taken branch — br, taken
// br_if, taken br_ifz, br_table, the superset of loop back-edges — and
// at every call, so a guest infinite loop or runaway recursion is
// reached within one iteration. A tripped checkpoint unwinds with
// TrapInterrupted (wrapping ctx.Err()) or TrapFuelExhausted; like any
// trap, the unwind leaves the instance resettable, so pooled engines
// recycle interrupted instances normally. When no context cancellation
// and no fuel budget apply, the meter is nil and every checkpoint
// degenerates to a single never-taken pointer test — the zero-cost nop
// variant that keeps unmetered dispatch at full speed.
//
// # Host functions and the privilege model
//
// Host functions are defined in HostModules — typed adapters
// (Func0..Func4, Void0..Void4) or raw slots — and linked either via
// Config.HostModules or, for pooled engines, via a Config.Imports
// snapshot resolved once per compiled module (ResolveImports). Link
// failures are structured LinkErrors wrapping ErrUnresolvedImport /
// ErrImportTypeMismatch. Every host function receives a HostContext:
// the in-flight call's context, a Memory view, fuel accounting, and
// re-entrant guest Call. The args slice a host function receives is a
// view of the caller's operand-stack slots in the arena — valid for the
// duration of the host call, exactly like the HostContext itself.
//
// Host code runs with runtime privileges, which draws a precise line
// through the MTE machinery:
//
//   - Guest accesses (lowered loads/stores) are subject to the full
//     sandbox: bounds or masking, and tag checks under MTE modes. A
//     mismatch traps.
//   - The HostContext Memory view accepts guest pointers (untagging
//     them the way the address-lowering helpers do), enforces bounds
//     against the guest-visible memory size, and charges the timing
//     model — but performs no tag check. The host is the runtime: like
//     the kernel servicing a syscall, it accesses memory under its own
//     privilege, and a tag check against a guest-chosen tag would add
//     no integrity (the host's bounds check is what keeps it inside
//     the sandbox). This mirrors real MTE, where EL1 accesses are
//     checked against TCF settings of the kernel, not the process.
//   - The Instance.ReadBytes/WriteBytes/ReadU64/WriteU64 accessors take
//     physical offsets with no untagging and no event accounting; they
//     are for runtime subsystems (the hardened allocator's metadata
//     walks) that already hold canonical addresses.
//   - The HostSegment* wrappers go through the same segment semantics
//     (and event accounting) as the guest's segment.* instructions, so
//     allocator tagging behaves exactly like in-guest tagging.
//
// A blocking host function should select on HostContext.Context: when
// the call's deadline fires, returning the context error makes the
// guest trap with TrapInterrupted, and even a host function that
// swallows the cancellation is caught by the post-host meter check.
//
// # Snapshots and forking
//
// Instance.Snapshot freezes a quiescent instance's full mutable state —
// linear memory (plus host reserve), globals, indirect-call table, MTE
// tag image and generator state, PAC keys, and the §7.2/§7.4 accounting
// — into an immutable Snapshot. The image is consumed two ways, both
// through the single restore helper RestoreFromSnapshot:
//
//   - Config.Snapshot at instantiation: NewInstance skips data-segment
//     replay, whole-memory tagging, and the start function, restoring
//     the image instead (the engine's pool-spawn fast path).
//   - RestoreFromSnapshot on a live instance: the pooled-reset fast
//     path — rewind a recycled instance to the post-init state instead
//     of replaying Reset's zero + data segments + start.
//
// This is Wizer-style pre-initialization: run the expensive start/init
// once, snapshot, and fork every subsequent instance from the frozen
// image. Restores are safe concurrently against one shared snapshot.
//
// Restore cost by build (SnapshotRestoreMode reports which is active):
//
//   - default ("copy"): one bulk copy into retained capacity — or,
//     when the image is mostly zeros (the usual post-init shape, found
//     by a capture-time non-zero-span scan), a zero-fill plus span
//     copy, which runs at memclr speed and beats legacy Reset.
//   - cagecow && linux && (amd64 || arm64) ("cow"): capture also seals
//     the image into a memfd, and each restore maps it MAP_PRIVATE —
//     O(1)-ish in heap size; pages are copied by the kernel only when
//     written. If the mapping fails at runtime the restore falls back
//     to the copy path; other platforms compile the stub and always
//     copy. GOOS=darwin (and every non-Linux target) builds cleanly
//     with or without the tag.
//
// Reset-semantics migration note: Reset always rotates the PAC
// modifier, so pointers signed in a previous lifetime fail
// authentication (§6.3). A snapshot restore preserves that property
// when it can prove the image carries no signatures (no
// i64.pointer_sign executed before capture — the common case, checked
// at capture time): each fork derives a fresh modifier from its seed.
// When the image does carry signed pointers, forks must adopt the
// snapshot's keys so stored signatures keep authenticating — forks of
// such an image share one modifier, a deliberate relaxation of the
// one-modifier-per-lifetime rule that embedders snapshotting
// signature-bearing state opt into.
//
// Paper map:
//
//   - NewInstance      — instantiation: linking, lowering, sandbox-tag
//     assignment and whole-memory tagging (Fig. 12b, the §7.2 startup
//     cost)
//   - Instance.Invoke  — execution with the Fig. 7/10/11 instruction
//     extension (segment.*, i64.pointer_sign / i64.pointer_auth);
//     InvokeWith adds context interruption and per-call fuel, stack,
//     and memory bounds
//   - Instance.Reset   — instance recycling for pooled engines: restores
//     the freshly-instantiated state (memory, tags, PAC modifier)
//     without re-paying validation, precompilation, or the frame
//     machine's arena
//   - Instance.Snapshot / RestoreFromSnapshot — Wizer-style
//     pre-initialization: freeze the post-init state once, fork every
//     later instance from the image (copy or MAP_PRIVATE COW)
//   - Instance.Close   — teardown returning the sandbox tag to the
//     §6.4/§7.4 budget
//   - Trap             — the trap taxonomy embedders classify violations
//     with (tag mismatch, auth failure, bounds, segment misuse,
//     stack overflow)
package exec
