package exec_test

// Tests for the guard-region memory backend (internal/vmem, cageguard
// build tag). Most of them gate on vmem.Supported(): on unsupported
// builds the backend is inert and the heap paths — already covered by
// the rest of the suite — serve every instance. The static invariants
// run everywhere.

import (
	"testing"

	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/ir"
	"cage/internal/polybench"
	"cage/internal/vmem"
	"cage/internal/wasm"
)

// TestGuardHeadroomCoversMaxOffset pins the cross-package invariant the
// guard dispatch relies on: the largest address a guard-eligible access
// can form — a 32-bit index plus the lowering's immediate-offset cap
// plus the widest access — must land inside the reservation, so it
// either hits committed memory or faults in PROT_NONE; it can never
// escape past the mapping.
func TestGuardHeadroomCoversMaxOffset(t *testing.T) {
	if vmem.Headroom < ir.GuardMaxOffset+8 {
		t.Fatalf("vmem.Headroom %d < ir.GuardMaxOffset+8 = %d",
			vmem.Headroom, ir.GuardMaxOffset+8)
	}
}

// TestGuardLoweringGating: guard opcodes appear exactly when the build
// supports the backend, and only for guard32-strategy programs.
func TestGuardLoweringGating(t *testing.T) {
	k, err := polybench.ByName("gemm")
	if err != nil {
		t.Fatal(err)
	}
	m, err := polybench.Build(k, codegen.Options{Wasm64: false})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := exec.LowerModule(m, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.Cfg.Guard != vmem.Supported() {
		t.Fatalf("guard32 program lowered with Guard=%v, vmem.Supported()=%v",
			prog.Cfg.Guard, vmem.Supported())
	}
	var guarded int
	for _, f := range prog.Funcs {
		for _, in := range f.Code {
			if in.Op == ir.OpLoadG32G || in.Op == ir.OpStoreG32G {
				guarded++
			}
		}
	}
	if vmem.Supported() && guarded == 0 {
		t.Fatal("guard-capable build lowered no guard opcodes")
	}
	if !vmem.Supported() && guarded != 0 {
		t.Fatalf("unsupported build lowered %d guard opcodes", guarded)
	}
}

// TestGuardMatchesLegacyOnPolybench is the guard tier's differential
// oracle: wasm32 kernels on the guard backend (plain and fused) must
// match the legacy interpreter in results and event counts.
func TestGuardMatchesLegacyOnPolybench(t *testing.T) {
	if !vmem.Supported() {
		t.Skip("guard backend unsupported in this build (needs -tags=cageguard on linux/amd64 or linux/arm64)")
	}
	for _, name := range []string{"gemm", "jacobi-1d"} {
		t.Run(name, func(t *testing.T) {
			k, err := polybench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := polybench.Build(k, codegen.Options{Wasm64: false})
			if err != nil {
				t.Fatal(err)
			}

			var ctrGuard arch.Counter
			guard := newKernelInstance(t, m, core.Features{}, &ctrGuard)
			guardRes, err := guard.Invoke("run", uint64(k.TestN))
			if err != nil {
				t.Fatalf("guard run: %v", err)
			}

			var ctrFused arch.Counter
			fused := newFusedKernelInstance(t, m, core.Features{}, &ctrFused)
			fusedRes, err := fused.Invoke("run", uint64(k.TestN))
			if err != nil {
				t.Fatalf("fused guard run: %v", err)
			}

			var ctrLeg arch.Counter
			leg := newKernelInstance(t, m, core.Features{}, &ctrLeg)
			lr, err := exec.NewLegacyRunner(leg)
			if err != nil {
				t.Fatal(err)
			}
			legRes, err := lr.Invoke("run", uint64(k.TestN))
			if err != nil {
				t.Fatalf("legacy run: %v", err)
			}

			if guardRes[0] != legRes[0] || fusedRes[0] != legRes[0] {
				t.Fatalf("results: guard=%#x fused=%#x legacy=%#x",
					guardRes[0], fusedRes[0], legRes[0])
			}
			for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
				if ctrGuard.Get(ev) != ctrLeg.Get(ev) {
					t.Errorf("event %v: guard=%d legacy=%d", ev, ctrGuard.Get(ev), ctrLeg.Get(ev))
				}
				if ctrFused.Get(ev) != ctrLeg.Get(ev) {
					t.Errorf("event %v: fused=%d legacy=%d", ev, ctrFused.Get(ev), ctrLeg.Get(ev))
				}
			}
		})
	}
}

// guardModule builds a wasm32 module exporting poke(addr, val):
// i32.store val at addr, and peek(addr): i32.load, plus grow(n):
// memory.grow by n pages.
func guardModule(min uint64) *wasm.Module {
	return &wasm.Module{
		Types: []wasm.FuncType{
			{Params: []wasm.ValType{wasm.I32, wasm.I32}},                          // poke
			{Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}}, // peek, grow
		},
		Funcs: []wasm.Function{
			{TypeIdx: 0, Body: []wasm.Instr{
				wasm.LocalGet(0), wasm.LocalGet(1), wasm.Store(wasm.OpI32Store, 0), wasm.Op(wasm.OpEnd),
			}},
			{TypeIdx: 1, Body: []wasm.Instr{
				wasm.LocalGet(0), wasm.Load(wasm.OpI32Load, 0), wasm.Op(wasm.OpEnd),
			}},
			{TypeIdx: 1, Body: []wasm.Instr{
				wasm.LocalGet(0), wasm.Op(wasm.OpMemoryGrow), wasm.Op(wasm.OpEnd),
			}},
		},
		Mems: []wasm.MemoryType{{Limits: wasm.Limits{Min: min, Max: 4, HasMax: true}}},
		Exports: []wasm.Export{
			{Name: "poke", Kind: wasm.ExportFunc, Idx: 0},
			{Name: "peek", Kind: wasm.ExportFunc, Idx: 1},
			{Name: "grow", Kind: wasm.ExportFunc, Idx: 2},
		},
	}
}

// newGuardInstances returns a plain and an exhaustively fused instance
// of the module, both on whatever backend the build provides.
func newGuardInstances(t *testing.T, m *wasm.Module) (*exec.Instance, *exec.Instance) {
	t.Helper()
	plain, err := exec.NewInstance(m, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := exec.LowerModule(m, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := exec.NewInstance(m, exec.Config{Program: fuse.Fuse(prog, nil)})
	if err != nil {
		t.Fatal(err)
	}
	return plain, fused
}

// TestGuardOOBTraps: accesses past the committed prefix must raise
// TrapOutOfBounds — via the MMU on the guard backend, via the explicit
// check elsewhere — and leave the instance usable.
func TestGuardOOBTraps(t *testing.T) {
	m := guardModule(1)
	plain, fused := newGuardInstances(t, m)
	for _, inst := range []*exec.Instance{plain, fused} {
		// One page committed: 65532 is the last aligned in-bounds slot.
		if _, err := inst.Invoke("poke", 65532, 7); err != nil {
			t.Fatalf("in-bounds store: %v", err)
		}
		if _, err := inst.Invoke("poke", 65533, 7); !exec.IsTrap(err, exec.TrapOutOfBounds) {
			t.Fatalf("straddling store: got %v, want TrapOutOfBounds", err)
		}
		if _, err := inst.Invoke("peek", 1<<20); !exec.IsTrap(err, exec.TrapOutOfBounds) {
			t.Fatalf("far load: got %v, want TrapOutOfBounds", err)
		}
		// The trap must not have poisoned the instance.
		res, err := inst.Invoke("peek", 65532)
		if err != nil || uint32(res[0]) != 7 {
			t.Fatalf("post-trap peek = %v, %v; want 7", res, err)
		}
	}
}

// TestGuardMemoryGrow: growth must commit new pages that are readable,
// writable, zeroed, and bounded by the declared maximum.
func TestGuardMemoryGrow(t *testing.T) {
	m := guardModule(1)
	plain, fused := newGuardInstances(t, m)
	for _, inst := range []*exec.Instance{plain, fused} {
		if _, err := inst.Invoke("peek", 70000); !exec.IsTrap(err, exec.TrapOutOfBounds) {
			t.Fatalf("pre-grow access: got %v, want TrapOutOfBounds", err)
		}
		res, err := inst.Invoke("grow", 1)
		if err != nil || uint32(res[0]) != 1 {
			t.Fatalf("grow(1) = %v, %v; want old page count 1", res, err)
		}
		if res, err := inst.Invoke("peek", 70000); err != nil || uint32(res[0]) != 0 {
			t.Fatalf("fresh page not zeroed/readable: %v, %v", res, err)
		}
		if _, err := inst.Invoke("poke", 70000, 42); err != nil {
			t.Fatalf("store to fresh page: %v", err)
		}
		if res, err := inst.Invoke("peek", 70000); err != nil || uint32(res[0]) != 42 {
			t.Fatalf("readback: %v, %v; want 42", res, err)
		}
		// Beyond the declared max of 4 pages the grow must fail with -1.
		if res, err := inst.Invoke("grow", 100); err != nil || int32(res[0]) != -1 {
			t.Fatalf("over-max grow = %v, %v; want -1", res, err)
		}
	}
}

// TestGuardResetAndSnapshot: the pooled-reset and snapshot/restore
// cycles must shrink, zero, and recommit guard memory correctly.
func TestGuardResetAndSnapshot(t *testing.T) {
	m := guardModule(1)
	inst, err := exec.NewInstance(m, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("grow", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("poke", 70000, 99); err != nil {
		t.Fatal(err)
	}

	snap, err := inst.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Reset: back to one page, zeroed, grown page decommitted.
	if err := inst.Reset(1); err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("peek", 70000); !exec.IsTrap(err, exec.TrapOutOfBounds) {
		t.Fatalf("post-reset access past initial size: got %v, want TrapOutOfBounds", err)
	}
	if res, err := inst.Invoke("peek", 100); err != nil || res[0] != 0 {
		t.Fatalf("post-reset memory not zeroed: %v, %v", res, err)
	}

	// Restore: two pages again, with the poked value back.
	if err := inst.RestoreFromSnapshot(snap, 2); err != nil {
		t.Fatal(err)
	}
	if res, err := inst.Invoke("peek", 70000); err != nil || uint32(res[0]) != 99 {
		t.Fatalf("post-restore peek = %v, %v; want 99", res, err)
	}

	// A fork instantiated from the image sees the same state.
	fork, err := exec.NewInstance(m, exec.Config{Snapshot: snap})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := fork.Invoke("peek", 70000); err != nil || uint32(res[0]) != 99 {
		t.Fatalf("forked peek = %v, %v; want 99", res, err)
	}
	if err := fork.Close(); err != nil {
		t.Fatal(err)
	}
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
}
