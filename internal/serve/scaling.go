package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
	"time"

	"cage"
	"cage/internal/bench"
	"cage/internal/engine"
)

// Scaling benchmark: same-binary A/B of the serve hot path. Unlike the
// saturation sweep, the handler is driven in-process — no listener, no
// TCP round-trip — because the thing under test is the serve/engine
// path itself (parse, lookup, admission, checkout, call, encode), and a
// loopback RTT of tens of microseconds would flatten any difference
// between the two paths. The "locked" mode reconstructs the pre-scale-
// out code: engine.SetFastPaths(false) routes the compiled-program
// caches through their single mutex and the instance pool through its
// condvar queue, and Options.LegacyHotPath selects the allocate-per-
// request handler. The "fast" mode is the shipped default: sharded
// lock-free caches, Treiber-stack checkout, zero-alloc handler.

// scalingSource is the benchmark guest: a call-overhead microworkload.
// The guest body is deliberately trivial so the serve path, not guest
// execution, dominates each request.
const scalingSource = `long add(long a, long b) { return a + b; }`

// MeasureScaling runs the locked/fast A/B across GOMAXPROCS ×
// concurrency and reports throughput, latency percentiles, mutex-wait
// and allocation deltas per point. quick selects the CI smoke shape.
func MeasureScaling(quick bool) (*bench.ScalingRecord, error) {
	gms := []int{1, 2, 4}
	perClient := 300
	if quick {
		gms = []int{1, 2}
		perClient = 40
	}
	rec := &bench.ScalingRecord{Workload: "add", N: 2, RequestsPerClient: perClient}

	prevMode := engine.FastPaths()
	defer engine.SetFastPaths(prevMode)
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)

	for _, path := range []string{"locked", "fast"} {
		// Engines capture the mode at creation, so it must be latched
		// before New.
		engine.SetFastPaths(path == "fast")
		cfg, err := cage.ConfigByName("sandbox")
		if err != nil {
			return nil, err
		}
		srv, err := New(Options{
			Config:        cfg,
			ConfigName:    "sandbox",
			LegacyHotPath: path == "locked",
		})
		if err != nil {
			return nil, err
		}
		body, err := scalingWorkload(srv)
		if err != nil {
			srv.Close()
			return nil, err
		}
		for _, g := range gms {
			runtime.GOMAXPROCS(g)
			for _, conc := range scalingLevels(g, quick) {
				p := driveScalingPoint(srv, body, conc, perClient)
				p.Path, p.GOMAXPROCS = path, g
				rec.Points = append(rec.Points, p)
			}
		}
		runtime.GOMAXPROCS(prevProcs)
		srv.Close()
	}

	locked := make(map[string]float64)
	for _, p := range rec.Points {
		if p.Path == "locked" {
			locked[scalingKey(p.GOMAXPROCS, p.Concurrency)] = p.ThroughputRPS
		}
	}
	rec.Speedup = make(map[string]float64)
	for _, p := range rec.Points {
		if k := scalingKey(p.GOMAXPROCS, p.Concurrency); p.Path == "fast" && locked[k] > 0 {
			rec.Speedup[k] = p.ThroughputRPS / locked[k]
		}
	}
	return rec, nil
}

func scalingKey(g, conc int) string { return fmt.Sprintf("g%d/c%d", g, conc) }

// scalingLevels picks the concurrency sweep for one GOMAXPROCS width:
// under-subscribed, matched, and the 2× / 4× over-subscription where
// checkout contention and lock convoys live.
func scalingLevels(g int, quick bool) []int {
	levels := []int{1, g, 2 * g, 4 * g}
	if quick {
		levels = []int{1, 2 * g}
	}
	sort.Ints(levels)
	out := levels[:1]
	for _, c := range levels[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// scalingWorkload registers the guest through the real upload handler
// and returns the invoke body the workers will replay.
func scalingWorkload(srv *Server) ([]byte, error) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/modules", nil)
	req.Body = &replayBody{data: []byte(scalingSource)}
	srv.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		return nil, fmt.Errorf("serve: registering scaling workload: status %d: %s", rec.Code, rec.Body.String())
	}
	var up UploadResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &up); err != nil {
		return nil, err
	}
	return []byte(fmt.Sprintf(`{"module":%q,"function":"add","args":[3,4]}`, up.Module)), nil
}

// replayBody is a rewindable no-op-close request body, so one request
// value can be replayed without per-iteration reader allocations.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }
func (b *replayBody) rewind()      { b.off = 0 }

// nullResponseWriter records the status code and discards the body.
type nullResponseWriter struct {
	h    http.Header
	code int
}

func (w *nullResponseWriter) Header() http.Header { return w.h }
func (w *nullResponseWriter) WriteHeader(c int)   { w.code = c }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return len(p), nil
}

// scalingWorker is one client goroutine's reusable request state.
type scalingWorker struct {
	srv  *Server
	req  *http.Request
	body *replayBody
	w    nullResponseWriter
	errs int
}

func newScalingWorker(srv *Server, body []byte) *scalingWorker {
	sw := &scalingWorker{srv: srv, body: &replayBody{data: body}}
	sw.req = httptest.NewRequest(http.MethodPost, "/v1/invoke", nil)
	sw.req.Header.Set(TenantHeader, "bench")
	sw.req.Body = sw.body
	sw.w.h = make(http.Header)
	return sw
}

// run replays n requests, recording per-request latency into lat (which
// may be nil for warmup).
func (sw *scalingWorker) run(n int, lat []time.Duration) {
	for i := 0; i < n; i++ {
		sw.body.rewind()
		sw.w.code = 0
		t0 := time.Now()
		sw.srv.handleInvoke(&sw.w, sw.req)
		d := time.Since(t0)
		if lat != nil {
			lat[i] = d
		}
		if sw.w.code != http.StatusOK {
			sw.errs++
		}
	}
}

// serveMetrics is the pair of runtime/metrics samples each point deltas.
type serveMetrics struct {
	mutexWaitNs int64
	heapAllocs  uint64
}

func readServeMetrics() serveMetrics {
	samples := []metrics.Sample{
		{Name: "/sync/mutex/wait/total:seconds"},
		{Name: "/gc/heap/allocs:objects"},
	}
	metrics.Read(samples)
	var m serveMetrics
	if samples[0].Value.Kind() == metrics.KindFloat64 {
		m.mutexWaitNs = int64(samples[0].Value.Float64() * 1e9)
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		m.heapAllocs = samples[1].Value.Uint64()
	}
	return m
}

// driveScalingPoint measures one (concurrency) cell against a live
// server: conc workers each replay perClient requests after a short
// unmeasured warmup that spawns the pool up to the offered load.
func driveScalingPoint(srv *Server, body []byte, conc, perClient int) bench.ScalingPoint {
	workers := make([]*scalingWorker, conc)
	for i := range workers {
		workers[i] = newScalingWorker(srv, body)
	}
	var wg sync.WaitGroup
	for _, sw := range workers {
		wg.Add(1)
		go func(sw *scalingWorker) {
			defer wg.Done()
			sw.run(2, nil)
		}(sw)
	}
	wg.Wait()
	for _, sw := range workers {
		sw.errs = 0
	}

	total := conc * perClient
	latencies := make([]time.Duration, total)
	before := readServeMetrics()
	t0 := time.Now()
	for i, sw := range workers {
		wg.Add(1)
		go func(i int, sw *scalingWorker) {
			defer wg.Done()
			sw.run(perClient, latencies[i*perClient:(i+1)*perClient])
		}(i, sw)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	after := readServeMetrics()

	errs := 0
	for _, sw := range workers {
		errs += sw.errs
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	ok := total - errs
	p := bench.ScalingPoint{
		Concurrency: conc,
		Requests:    total,
		Errors:      errs,
		P50Ns:       percentile(latencies, 0.50).Nanoseconds(),
		P99Ns:       percentile(latencies, 0.99).Nanoseconds(),
		MutexWaitNs: after.mutexWaitNs - before.mutexWaitNs,
		AllocsPerOp: float64(after.heapAllocs-before.heapAllocs) / float64(total),
	}
	if elapsed > 0 {
		p.ThroughputRPS = float64(ok) / elapsed.Seconds()
	}
	return p
}
