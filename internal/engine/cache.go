package engine

import (
	"crypto/sha256"
	"sync"
	"sync/atomic"
)

// Key identifies a cached artifact: a content hash plus a variant string
// encoding everything else that influences the build (the Table 3
// configuration, the ABI, the toolchain revision...).
type Key struct {
	Hash    [sha256.Size]byte
	Variant string
}

// KeyOf hashes content and pairs it with a variant.
func KeyOf(content []byte, variant string) Key {
	return Key{Hash: sha256.Sum256(content), Variant: variant}
}

// KeyOfString is KeyOf for string content (e.g. MiniC source).
func KeyOfString(content, variant string) Key {
	return Key{Hash: sha256.Sum256([]byte(content)), Variant: variant}
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Hits    uint64 // lookups served from (or joined onto) an entry
	Misses  uint64 // lookups that ran the build function
	Entries int    // values currently cached
}

// cacheEntry is a singleflight slot: the first goroutine to claim a key
// builds; everyone else blocks on done.
type cacheEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// cacheShards is the shard count for the fast-path layout. Keys are
// content hashes, so the first hash byte is uniformly distributed and a
// mask suffices; 16 shards keeps clone-on-write misses cheap while
// spreading writer contention far past any realistic core count for
// the handful of distinct variants a server compiles.
const cacheShards = 16

// cacheShard is one hash-sharded segment. Lookups are lock-free: the
// entry table is an immutable map published through snap, and mutators
// clone-and-republish it under mu (the mutex orders writers only —
// readers never take it).
type cacheShard[V any] struct {
	snap   atomic.Pointer[map[Key]*cacheEntry[V]]
	hits   atomic.Uint64
	misses atomic.Uint64
	mu     sync.Mutex
}

// lookup is the lock-free read path.
func (sh *cacheShard[V]) lookup(key Key) (*cacheEntry[V], bool) {
	if m := sh.snap.Load(); m != nil {
		e, ok := (*m)[key]
		return e, ok
	}
	return nil, false
}

// publishLocked clones the current table, applies one insert (e != nil)
// or delete (e == nil), and republishes. Caller holds sh.mu.
func (sh *cacheShard[V]) publishLocked(key Key, e *cacheEntry[V]) {
	old := sh.snap.Load()
	n := 1
	if old != nil {
		n += len(*old)
	}
	next := make(map[Key]*cacheEntry[V], n)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	if e != nil {
		next[key] = e
	} else {
		delete(next, key)
	}
	sh.snap.Store(&next)
}

// Cache is a concurrency-safe build cache with singleflight semantics:
// for each key the build function runs at most once at a time, losers
// wait for the winner's result, and failed builds are not cached (a
// later lookup retries).
//
// The hot path — a lookup that hits — is lock-free: it loads a shard's
// published map pointer and reads it, so concurrent hits on any mix of
// keys never serialize. See the package documentation for the full
// concurrency model. The zero value is ready to use.
type Cache[V any] struct {
	// mode latches the concurrency layout (fast sharded vs. legacy
	// single-mutex) on first use, per SetFastPaths.
	mode   atomic.Int32
	shards [cacheShards]cacheShard[V]

	// legacy is the pre-sharding entry table, used only when the cache
	// latched the single-mutex layout; guarded by shards[0].mu, with
	// counters kept in shards[0] so Stats is uniform.
	legacy map[Key]*cacheEntry[V]
}

const (
	cacheModeUnset int32 = iota
	cacheModeFast
	cacheModeLegacy
)

func (c *Cache[V]) latchMode() int32 {
	if m := c.mode.Load(); m != cacheModeUnset {
		return m
	}
	want := cacheModeFast
	if !FastPaths() {
		want = cacheModeLegacy
	}
	c.mode.CompareAndSwap(cacheModeUnset, want)
	return c.mode.Load()
}

// GetOrBuild returns the cached value for key, building it with build on
// first use. Concurrent callers of the same key share one build.
func (c *Cache[V]) GetOrBuild(key Key, build func() (V, error)) (V, error) {
	if c.latchMode() == cacheModeLegacy {
		return c.getOrBuildLegacy(key, build)
	}
	sh := &c.shards[key.Hash[0]&(cacheShards-1)]
	if e, ok := sh.lookup(key); ok {
		sh.hits.Add(1)
		<-e.done
		return e.val, e.err
	}
	return sh.getOrBuildSlow(key, build)
}

// getOrBuildSlow is the miss path: re-check under the shard mutex (the
// lock-free lookup may have raced another miss), claim the key with a
// singleflight entry, build outside the lock, and evict on failure.
func (sh *cacheShard[V]) getOrBuildSlow(key Key, build func() (V, error)) (V, error) {
	sh.mu.Lock()
	if e, ok := sh.lookup(key); ok {
		sh.hits.Add(1)
		sh.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	sh.publishLocked(key, e)
	sh.misses.Add(1)
	sh.mu.Unlock()

	e.val, e.err = build()
	close(e.done)
	if e.err != nil {
		// Do not cache failures: the build may be retried (and an error
		// kept alive forever would pin its inputs).
		sh.mu.Lock()
		if cur, ok := sh.lookup(key); ok && cur == e {
			sh.publishLocked(key, nil)
		}
		sh.mu.Unlock()
	}
	return e.val, e.err
}

// getOrBuildLegacy is the pre-sharding single-mutex implementation,
// kept callable (via SetFastPaths(false)) as the baseline arm of the
// same-binary scaling A/B.
func (c *Cache[V]) getOrBuildLegacy(key Key, build func() (V, error)) (V, error) {
	sh := &c.shards[0]
	sh.mu.Lock()
	if c.legacy == nil {
		c.legacy = make(map[Key]*cacheEntry[V])
	}
	if e, ok := c.legacy[key]; ok {
		sh.hits.Add(1)
		sh.mu.Unlock()
		<-e.done
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.legacy[key] = e
	sh.misses.Add(1)
	sh.mu.Unlock()

	e.val, e.err = build()
	close(e.done)
	if e.err != nil {
		sh.mu.Lock()
		if c.legacy[key] == e {
			delete(c.legacy, key)
		}
		sh.mu.Unlock()
	}
	return e.val, e.err
}

// Stats returns a snapshot of the cache counters. It takes no locks on
// the fast-path layout, so metrics scrapes never stall lookups.
func (c *Cache[V]) Stats() CacheStats {
	var s CacheStats
	for i := range c.shards {
		sh := &c.shards[i]
		s.Hits += sh.hits.Load()
		s.Misses += sh.misses.Load()
	}
	if c.mode.Load() == cacheModeLegacy {
		sh := &c.shards[0]
		sh.mu.Lock()
		s.Entries = countDone(c.legacy)
		sh.mu.Unlock()
		return s
	}
	for i := range c.shards {
		if m := c.shards[i].snap.Load(); m != nil {
			s.Entries += countDone(*m)
		}
	}
	return s
}

// countDone counts entries whose build completed successfully.
func countDone[V any](m map[Key]*cacheEntry[V]) int {
	n := 0
	for _, e := range m {
		select {
		case <-e.done:
			if e.err == nil {
				n++
			}
		default: // still building
		}
	}
	return n
}
