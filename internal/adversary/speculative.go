package adversary

import (
	"fmt"

	"cage"
	"cage/internal/arch"
	"cage/internal/exploit"
)

// Speculative-leak scenarios. The interpreter does not speculate, so
// the leak itself is modeled, the way MTE and PAC are modeled
// elsewhere: a gadget program executes the attacker-relevant control
// flow (bounds-checked loads behind returns, indirect calls through a
// poisonable table), and the damage indicator is leakage observable in
// the event stream. A configuration closes the modeled channel exactly
// when, in the observed run,
//
//   - every executed speculation site — return, call_indirect,
//     br_table — is covered by a fence event (the hardened lowering
//     emits the fence adjacent to the site, so coverage means
//     fences >= sites with both nonzero), and
//   - at least one BTB flush guarded the sandbox transition, so the
//     attacker cannot have entered the guest with a poisoned predictor.
//
// Only the hardened preset satisfies both; every other configuration —
// including full — leaves the speculative window open and the verdict
// is exploited, with the uncovered site count as the machine-readable
// leakage indicator.

// SpeculativeScenarios returns the speculative-leak family: the
// bounds-check-bypass gadget and the poisoned indirect-branch gadget.
func SpeculativeScenarios() []Scenario {
	return []Scenario{
		&prog{
			name:   "spectre-bounds-check-bypass",
			family: "speculative",
			// A Spectre-v1 gadget: probe's length check guards the
			// load, and its return is the speculation site through
			// which the mispredicted-path load would transmit. The run
			// is architecturally benign; the oracle inspects the fence
			// coverage of the executed returns.
			source: `
extern char* malloc(long n);
long probe(long* arr, long i, long n) {
    if (i < n) { return arr[i]; }
    return 0;
}
long attack(long rounds) {
    long* arr = (long*)malloc(16 * 8);
    for (long i = 0; i < 16; i++) { arr[i] = i; }
    long acc = 0;
    for (long i = 0; i < rounds; i++) {
        acc = acc + probe(arr, i - (i / 16) * 16, 16);
    }
    if (acc < 0) { return 1; }
    return 0;
}`,
			entry:    "attack",
			arg:      64,
			expect:   expectSpeculative,
			classify: classifySpeculative,
		},
		&prog{
			name:   "spectre-poisoned-indirect-branch",
			family: "speculative",
			// A Spectre-v2 gadget: the loop's indirect calls through
			// the vtable are the poisonable branch targets. Training
			// alternates the two slots so both targets are executed;
			// the oracle requires every call_indirect (and every
			// return) to sit behind a fence, plus the BTB flush at
			// guest entry that evicts predictor state trained outside
			// the sandbox.
			source: `
long acc = 0;
void tick(void) { acc = acc + 1; }
void tock(void) { acc = acc + 2; }
struct VTable { void (*f)(void); void (*g)(void); };
long attack(long rounds) {
    struct VTable vt;
    vt.f = tick;
    vt.g = tock;
    long flip = 0;
    for (long i = 0; i < rounds; i++) {
        if (flip) { vt.f(); } else { vt.g(); }
        flip = 1 - flip;
    }
    if (acc < 0) { return 1; }
    return 0;
}`,
			entry:    "attack",
			arg:      64,
			expect:   expectSpeculative,
			classify: classifySpeculative,
		},
	}
}

// expectSpeculative: the modeled leak is closed only by the Spectre
// mitigations; every preset without them — including full — leaves it
// exploitable.
func expectSpeculative(cfg cage.Config) Outcome {
	if cfg.SpectreHarden {
		return Outcome{Verdict: VerdictMitigatedTiming}
	}
	return Outcome{Verdict: VerdictExploited}
}

// classifySpeculative derives the verdict from the run's event delta.
func classifySpeculative(_ cage.Config, obs Observation) Outcome {
	if obs.Trapped {
		// A trap would mean the gadget is not benign — surfaced as an
		// oracle mismatch, never silently absorbed.
		return Outcome{Verdict: VerdictTrapped, Class: exploit.ClassOf(obs.TrapCode),
			Detail: obs.TrapCode.String()}
	}
	fences := obs.Events.Get(arch.EvFence)
	flushes := obs.Events.Get(arch.EvBTBFlush)
	sites := obs.Events.Get(arch.EvReturn) +
		obs.Events.Get(arch.EvCallIndirect) +
		obs.Events.Get(arch.EvBrTable)
	if fences >= sites && fences > 0 && flushes > 0 {
		return Outcome{Verdict: VerdictMitigatedTiming, Detail: fmt.Sprintf(
			"%d fences cover %d speculation sites; %d BTB flushes", fences, sites, flushes)}
	}
	uncovered := sites
	if fences < sites {
		uncovered = sites - fences
	}
	return Outcome{Verdict: VerdictExploited, Detail: fmt.Sprintf(
		"%d of %d speculation sites unfenced", uncovered, sites)}
}
