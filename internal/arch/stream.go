package arch

import "cage/internal/mte"

// StreamModel captures a core's behaviour on large streaming memory
// operations: the 128 MiB memset of paper Fig. 4 and the tagged-memory
// initialization variants of Table 4 / Fig. 16.
//
// Parameters are calibrated against the paper's Pixel 8 measurements:
// MemsetBPC reproduces the "none" bars of Fig. 4, the per-granule check
// costs reproduce the sync/async bars, and InitBPC reproduces Fig. 16
// (whose runs execute under synchronous MTE against tagged memory, hence
// the slightly different baseline).
type StreamModel struct {
	// MemsetBPC is the sustained plain-store bandwidth in bytes/cycle
	// with MTE disabled and a clean cache.
	MemsetBPC float64
	// SyncCheckPerGranule is the extra cycles each 16-byte granule costs
	// when stores are tag-checked synchronously.
	SyncCheckPerGranule float64
	// AsyncCheckPerGranule is the analogous cost in asynchronous mode.
	AsyncCheckPerGranule float64
	// InitBPC is the effective streaming bandwidth (bytes/cycle) of each
	// Fig. 16 initialization variant under synchronous MTE.
	InitBPC [NumInitVariants]float64
}

// InitVariant enumerates the Table 4 rows.
type InitVariant int

const (
	// InitMemset is a plain memset (no tagging).
	InitMemset InitVariant = iota
	// InitSTG tags with stg, one granule per instruction, data untouched.
	InitSTG
	// InitST2G tags with st2g, two granules per instruction.
	InitST2G
	// InitSTGP tags and stores a register pair (zeroes data).
	InitSTGP
	// InitSTZG tags and zeroes one granule.
	InitSTZG
	// InitST2ZG tags and zeroes two granules.
	InitST2ZG
	// InitSTGMemset tags with stg, then memsets (two logical passes).
	InitSTGMemset
	// InitST2GMemset tags with st2g, then memsets.
	InitST2GMemset
	// NumInitVariants is the number of variants.
	NumInitVariants
)

var initNames = [...]string{
	InitMemset: "memset", InitSTG: "stg", InitST2G: "st2g", InitSTGP: "stgp",
	InitSTZG: "stzg", InitST2ZG: "st2zg", InitSTGMemset: "stg+memset",
	InitST2GMemset: "st2g+memset",
}

// String returns the Table 4 variant name.
func (v InitVariant) String() string {
	if int(v) < len(initNames) {
		return initNames[v]
	}
	return "init(?)"
}

// TagStoreOp returns the tag-store instruction a variant uses, and false
// for the plain-memset variant.
func (v InitVariant) TagStoreOp() (mte.TagStoreOp, bool) {
	switch v {
	case InitSTG, InitSTGMemset:
		return mte.OpSTG, true
	case InitST2G, InitST2GMemset:
		return mte.OpST2G, true
	case InitSTGP:
		return mte.OpSTGP, true
	case InitSTZG:
		return mte.OpSTZG, true
	case InitST2ZG:
		return mte.OpST2ZG, true
	}
	return 0, false
}

// SetsZero reports whether the variant leaves the region zero-filled
// (Table 4 "Sets 0" column).
func (v InitVariant) SetsZero() bool {
	switch v {
	case InitSTGP, InitSTZG, InitST2ZG, InitSTGMemset, InitST2GMemset, InitMemset:
		return true
	}
	return false
}

// UsesMemset reports whether the variant includes a separate memset pass
// (Table 4 "memset" column).
func (v InitVariant) UsesMemset() bool {
	return v == InitMemset || v == InitSTGMemset || v == InitST2GMemset
}

// AllInitVariants lists the variants in Table 4 row order.
var AllInitVariants = []InitVariant{
	InitMemset, InitSTG, InitST2G, InitSTGP, InitSTZG, InitST2ZG,
	InitSTGMemset, InitST2GMemset,
}

// MemsetCycles models writing size bytes with a clean cache under the
// given MTE mode (paper Fig. 4).
func (c *Core) MemsetCycles(size uint64, mode mte.Mode) float64 {
	cycles := float64(size) / c.Stream.MemsetBPC
	granules := float64(size) / mte.GranuleSize
	switch mode {
	case mte.ModeSync:
		cycles += granules * c.Stream.SyncCheckPerGranule
	case mte.ModeAsync:
		cycles += granules * c.Stream.AsyncCheckPerGranule
	case mte.ModeAsymmetric:
		// Writes are the synchronous side.
		cycles += granules * c.Stream.SyncCheckPerGranule
	}
	return cycles
}

// InitCycles models initializing (and, per variant, tagging) size bytes
// under synchronous MTE (paper Fig. 16).
func (c *Core) InitCycles(size uint64, v InitVariant) float64 {
	return float64(size) / c.Stream.InitBPC[v]
}

// TagRegionCycles models tagging size bytes with stg-style stores, used
// for instance-startup accounting (paper §7.2): tagging a fresh linear
// memory streams at the InitSTG rate.
func (c *Core) TagRegionCycles(size uint64) float64 {
	return float64(size) / c.Stream.InitBPC[InitSTG]
}

// Stream parameters per core, calibrated to Fig. 4 ("none" bars and the
// sync/async deltas) and Fig. 16 (per-variant runtimes) at 128 MiB.
var (
	streamX3 = StreamModel{
		MemsetBPC:            1.527,
		SyncCheckPerGranule:  1.98,
		AsyncCheckPerGranule: 0.24,
		InitBPC: [NumInitVariants]float64{
			InitMemset: 1.373, InitSTG: 1.406, InitST2G: 1.385,
			InitSTGP: 1.474, InitSTZG: 1.419, InitST2ZG: 1.563,
			InitSTGMemset: 1.039, InitST2GMemset: 1.014,
		},
	}
	streamA715 = StreamModel{
		MemsetBPC:            1.276,
		SyncCheckPerGranule:  1.81,
		AsyncCheckPerGranule: 0.42,
		InitBPC: [NumInitVariants]float64{
			InitMemset: 1.158, InitSTG: 1.153, InitST2G: 1.210,
			InitSTGP: 1.213, InitSTZG: 1.180, InitST2ZG: 1.213,
			InitSTGMemset: 1.062, InitST2GMemset: 1.089,
		},
	}
	streamA510 = StreamModel{
		MemsetBPC:            1.095,
		SyncCheckPerGranule:  3.79,
		AsyncCheckPerGranule: 1.66,
		InitBPC: [NumInitVariants]float64{
			InitMemset: 0.859, InitSTG: 0.817, InitST2G: 0.805,
			InitSTGP: 0.950, InitSTZG: 1.012, InitST2ZG: 1.023,
			InitSTGMemset: 0.594, InitST2GMemset: 0.572,
		},
	}
)
