package exec_test

// Differential tests for the Spectre-hardened configuration: hardened
// must be bit-identical to full — same results, same reference
// checksums, same trap codes, and identical counts for every event
// except the mitigation's own fence/btb_flush — with the fences placed
// exactly at indirect branches and returns in the lowered stream. The
// mitigation is allowed to cost fuel; it is never allowed to change
// what the program computes.

import (
	"errors"
	"testing"

	"cage/internal/alloc"
	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/ir"
	"cage/internal/minicc"
	"cage/internal/polybench"
)

// hardenedFeatures is full Cage plus the modeled Spectre mitigations.
func hardenedFeatures() core.Features {
	f := core.CageAll()
	f.SpectreHarden = true
	return f
}

func TestHardenedMatchesFullOnPolybench(t *testing.T) {
	kernels := []string{"gemm", "2mm", "atax", "jacobi-1d", "durbin"}
	opts := codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}
	for _, name := range kernels {
		t.Run(name, func(t *testing.T) {
			k, err := polybench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := polybench.Build(k, opts)
			if err != nil {
				t.Fatal(err)
			}

			var ctrFull arch.Counter
			full := newKernelInstance(t, m, core.CageAll(), &ctrFull)
			fullRes, fullErr := full.Invoke("run", uint64(k.TestN))

			var ctrHard arch.Counter
			hard := newKernelInstance(t, m, hardenedFeatures(), &ctrHard)
			hardRes, hardErr := hard.Invoke("run", uint64(k.TestN))

			if (fullErr == nil) != (hardErr == nil) {
				t.Fatalf("error mismatch: full=%v hardened=%v", fullErr, hardErr)
			}
			if fullErr != nil {
				t.Fatalf("kernel failed under both configs: %v", fullErr)
			}
			if len(fullRes) != len(hardRes) {
				t.Fatalf("result arity: full=%d hardened=%d", len(fullRes), len(hardRes))
			}
			for i := range fullRes {
				if fullRes[i] != hardRes[i] {
					t.Fatalf("result[%d]: full=%#x hardened=%#x", i, fullRes[i], hardRes[i])
				}
			}
			// The hardened checksum must still match the C reference.
			if got, want := exec.F64Val(hardRes[0]), k.Reference(k.TestN); got != want {
				diff := got - want
				if diff < 0 {
					diff = -diff
				}
				scale := want
				if scale < 0 {
					scale = -scale
				}
				if diff > 1e-9*scale {
					t.Fatalf("hardened checksum %g, reference %g", got, want)
				}
			}
			// Every event except the mitigation's own pair must be
			// identical; the pair must be zero under full and nonzero
			// under hardened.
			for ev := arch.Event(0); ev < arch.NumEvents; ev++ {
				if ev == arch.EvFence || ev == arch.EvBTBFlush {
					continue
				}
				if ctrFull.Get(ev) != ctrHard.Get(ev) {
					t.Errorf("event %v: full=%d hardened=%d", ev, ctrFull.Get(ev), ctrHard.Get(ev))
				}
			}
			if n := ctrFull.Get(arch.EvFence) + ctrFull.Get(arch.EvBTBFlush); n != 0 {
				t.Errorf("full charged %d mitigation events, want 0", n)
			}
			if ctrHard.Get(arch.EvFence) == 0 {
				t.Error("hardened run produced no fence events")
			}
			if ctrHard.Get(arch.EvBTBFlush) == 0 {
				t.Error("hardened run produced no BTB-flush events")
			}
			// Fence coverage: the lowering fences every executed return,
			// call_indirect, and br_table, so the fence count must cover
			// the executed speculation sites.
			sites := ctrHard.Get(arch.EvReturn) + ctrHard.Get(arch.EvCallIndirect) +
				ctrHard.Get(arch.EvBrTable)
			if ctrHard.Get(arch.EvFence) < sites {
				t.Errorf("fences %d do not cover %d speculation sites",
					ctrHard.Get(arch.EvFence), sites)
			}
		})
	}
}

// TestHardenedFencePlacement statically pins the lowering contract: in
// a hardened program, an OpFence appears exactly where a speculation
// site follows — every fence is immediately followed by a return,
// function-end return, call_indirect, or br_table, and every such site
// is immediately preceded by a fence. Without Harden there are no
// fences at all.
func TestHardenedFencePlacement(t *testing.T) {
	fenced := func(op ir.Op) bool {
		return op == ir.OpReturn || op == ir.OpRetEnd ||
			op == ir.OpCallIndirect || op == ir.OpBrTable
	}
	kernels := []string{"gemm", "2mm", "atax", "jacobi-1d", "durbin"}
	opts := codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}
	for _, name := range kernels {
		t.Run(name, func(t *testing.T) {
			k, err := polybench.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := polybench.Build(k, opts)
			if err != nil {
				t.Fatal(err)
			}
			lcfg := exec.LowerConfig(m, exec.Config{Features: hardenedFeatures()})
			if !lcfg.Harden {
				t.Fatal("LowerConfig dropped Harden")
			}
			prog, err := ir.Lower(m, lcfg)
			if err != nil {
				t.Fatal(err)
			}
			fences := 0
			for fi := range prog.Funcs {
				code := prog.Funcs[fi].Code
				for pc, in := range code {
					if in.Op == ir.OpFence {
						fences++
						if pc+1 >= len(code) || !fenced(code[pc+1].Op) {
							t.Errorf("func %d pc %d: fence not followed by a speculation site", fi, pc)
						}
					}
					if fenced(in.Op) && (pc == 0 || code[pc-1].Op != ir.OpFence) {
						t.Errorf("func %d pc %d: %v not preceded by a fence", fi, pc, in.Op)
					}
				}
			}
			if fences == 0 {
				t.Error("hardened lowering emitted no fences")
			}

			// The same module without Harden lowers fence-free.
			lcfg.Harden = false
			plain, err := ir.Lower(m, lcfg)
			if err != nil {
				t.Fatal(err)
			}
			for fi := range plain.Funcs {
				for pc, in := range plain.Funcs[fi].Code {
					if in.Op == ir.OpFence {
						t.Fatalf("func %d pc %d: fence in non-hardened lowering", fi, pc)
					}
				}
			}
		})
	}
}

// TestHardenedTrapParity pins trap identity: a memory-safety violation
// must produce the same trap code under full and hardened.
func TestHardenedTrapParity(t *testing.T) {
	const src = `
extern char* malloc(long n);
long f(long n) {
    long* a = (long*)malloc(2 * 8);
    a[n] = 1;
    return a[0];
}`
	file, err := minicc.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := minicc.Analyze(file, minicc.Layout64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := codegen.Compile(prog, codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true})
	if err != nil {
		t.Fatal(err)
	}
	trapUnder := func(feats core.Features) *exec.Trap {
		t.Helper()
		host := &alloc.Host{}
		inst, err := exec.NewInstance(m, exec.Config{
			Features: feats, HostModules: alloc.HostModules(), HostData: host, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		heapBase, _ := inst.GlobalValue("__heap_base")
		if host.A, err = alloc.New(inst, heapBase); err != nil {
			t.Fatal(err)
		}
		_, callErr := inst.Invoke("f", 8)
		var tr *exec.Trap
		if !errors.As(callErr, &tr) {
			t.Fatalf("expected a trap, got %v", callErr)
		}
		return tr
	}
	fullTrap := trapUnder(core.CageAll())
	hardTrap := trapUnder(hardenedFeatures())
	if fullTrap.Code != hardTrap.Code {
		t.Errorf("trap mismatch: full=%v hardened=%v", fullTrap.Code, hardTrap.Code)
	}
}
