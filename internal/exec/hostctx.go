package exec

import (
	"context"
	"encoding/binary"

	"cage/internal/arch"
	"cage/internal/ptrlayout"
)

// HostContext is handed to every host function. It carries the
// host-side privileges of one in-flight guest→host crossing:
//
//   - the call's context.Context (the one passed to Engine.Call /
//     InvokeWith), so a blocking host function can select on
//     cancellation — returning the context error makes the guest trap
//     with TrapInterrupted instead of a generic host error;
//   - a bounds-checked Memory view over the guest linear memory;
//   - fuel accounting (ConsumeFuel), debited against the active meter
//     chain so metered calls observe host-side work;
//   - re-entrant guest calls (Call), which chain the per-call meters so
//     an inner invocation can never mask the outer call's deadline or
//     budget.
//
// A HostContext is only valid for the duration of the host call it was
// created for; host functions must not retain it.
type HostContext struct {
	inst *Instance
	ctx  context.Context
}

// Context returns the in-flight call's context: the ctx given to
// InvokeWith (and hence to Engine.Call), or context.Background() for an
// unbounded Invoke. Blocking host functions should select on
// Context().Done() and return Context().Err() when it fires; the
// runtime converts that into a TrapInterrupted trap.
func (hc *HostContext) Context() context.Context {
	if hc.ctx != nil {
		return hc.ctx
	}
	return context.Background()
}

// Instance exposes the executing instance for runtime-internal host
// code (the hardened allocator, segment operations). Most host
// functions should stay on the HostContext surface.
func (hc *HostContext) Instance() *Instance { return hc.inst }

// Data returns the embedder value attached to the instance
// (Config.HostData): per-instance host state such as the hardened
// allocator binding or a WASI system, shared by all host functions of
// the instance.
func (hc *HostContext) Data() any { return hc.inst.hostData }

// Memory returns the bounds-checked view of the guest linear memory.
func (hc *HostContext) Memory() Memory { return Memory{inst: hc.inst} }

// ConsumeFuel debits n fuel units (timing-model events, arch.EvHost)
// for host-side work, then polls the active meter chain: if the debit
// exhausts any in-flight fuel budget — or a cancellation landed — it
// returns the corresponding trap, which the host function should
// propagate. With no meter armed it only records the events.
func (hc *HostContext) ConsumeFuel(n uint64) error {
	hc.inst.counter.Add(arch.EvHost, n)
	if m := hc.inst.meter; m != nil {
		return m.check(hc.inst.counter)
	}
	return nil
}

// Call re-enters the guest: it invokes the exported function name on
// the same instance under ctx (nil means the host call's own context).
// The inner invocation chains onto the in-flight call's meters, so the
// outer deadline and fuel budget keep counting — a host function cannot
// launder an unbounded guest call out of a bounded one. In the frame
// machine the re-entry opens a barrier frame above the in-flight
// activation's live arena: the inner call tree stacks (and, if needed,
// grows the arena) above the outer frames and is unwound to the
// barrier however it exits, so the interrupted caller always resumes
// on intact state.
func (hc *HostContext) Call(ctx context.Context, name string, args []uint64) ([]uint64, error) {
	if ctx == nil {
		ctx = hc.Context()
	}
	res, err := hc.inst.InvokeWith(ctx, name, args, CallOptions{})
	return res.Values, err
}

// HostContext builds a host context for direct host-side use of the
// instance outside a guest call (tests, embedder tooling that drives
// host functions directly). ctx may be nil.
func (inst *Instance) HostContext(ctx context.Context) *HostContext {
	return &HostContext{inst: inst, ctx: ctx}
}

// Memory is the bounds-checked host view of one instance's guest linear
// memory. Accesses accept guest pointers as the guest would pass them —
// MTE tag and PAC bits are stripped before use — and every access is
// charged to the timing model like a guest load or store. Unlike guest
// accesses, the view does not check MTE tags: host functions run with
// runtime privileges, exactly like the runtime's own accesses (see the
// package comment's privilege model). Bounds are always enforced
// against the guest-visible memory size, so no host function can be
// tricked into touching the runtime-owned region beyond it.
type Memory struct {
	inst *Instance
}

// untagPtr strips the metadata bits a guest pointer may carry: the MTE
// tag and PAC signature for 64-bit pointers, the upper half for ILP32
// pointers.
func untagPtr(p uint64, ptr32 bool) uint64 {
	if ptr32 {
		return p & 0xFFFFFFFF
	}
	return ptrlayout.Address(ptrlayout.StripTag(p))
}

// addr canonicalizes a guest pointer for this instance's memory model.
func (m Memory) addr(p uint64) uint64 {
	return untagPtr(p, !m.inst.memType.Memory64)
}

// Size returns the guest-visible memory size in bytes.
func (m Memory) Size() uint64 { return m.inst.memSize }

// span bounds-checks [p, p+n) after untagging and charges the access
// to the timing model — one event per 8-byte unit (minimum one), the
// word width a guest loop would pay — returning the physical offset.
// Proportional charging keeps bulk host copies visible to WithFuel
// budgets instead of letting them cost a flat event.
func (m Memory) span(p, n uint64, ev arch.Event) (uint64, error) {
	addr := m.addr(p)
	if err := checkHostRange(addr, n, m.inst.memSize); err != nil {
		return 0, err
	}
	units := (n + 7) / 8
	if units == 0 {
		units = 1
	}
	m.inst.counter.Add(ev, units)
	return addr, nil
}

// ReadBytes copies n bytes of guest memory starting at the guest
// pointer p.
func (m Memory) ReadBytes(p, n uint64) ([]byte, error) {
	addr, err := m.span(p, n, arch.EvLoad)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, m.inst.mem[addr:addr+n])
	return out, nil
}

// WriteBytes copies b into guest memory at the guest pointer p.
func (m Memory) WriteBytes(p uint64, b []byte) error {
	addr, err := m.span(p, uint64(len(b)), arch.EvStore)
	if err != nil {
		return err
	}
	m.inst.memDirty = true
	copy(m.inst.mem[addr:], b)
	return nil
}

// ReadString reads n bytes at the guest pointer p as a string.
func (m Memory) ReadString(p, n uint64) (string, error) {
	addr, err := m.span(p, n, arch.EvLoad)
	if err != nil {
		return "", err
	}
	return string(m.inst.mem[addr : addr+n]), nil
}

// ReadU64 reads a little-endian u64 at the guest pointer p.
func (m Memory) ReadU64(p uint64) (uint64, error) {
	addr, err := m.span(p, 8, arch.EvLoad)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(m.inst.mem[addr:]), nil
}

// WriteU64 writes a little-endian u64 at the guest pointer p.
func (m Memory) WriteU64(p, v uint64) error {
	addr, err := m.span(p, 8, arch.EvStore)
	if err != nil {
		return err
	}
	m.inst.memDirty = true
	binary.LittleEndian.PutUint64(m.inst.mem[addr:], v)
	return nil
}

// ReadU32 reads a little-endian u32 at the guest pointer p.
func (m Memory) ReadU32(p uint64) (uint32, error) {
	addr, err := m.span(p, 4, arch.EvLoad)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(m.inst.mem[addr:]), nil
}

// WriteU32 writes a little-endian u32 at the guest pointer p.
func (m Memory) WriteU32(p uint64, v uint32) error {
	addr, err := m.span(p, 4, arch.EvStore)
	if err != nil {
		return err
	}
	m.inst.memDirty = true
	binary.LittleEndian.PutUint32(m.inst.mem[addr:], v)
	return nil
}
