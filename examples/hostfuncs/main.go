// Hostfuncs demonstrates the public host-module API: an embedder
// extends the "env" import namespace with its own typed host functions
// — a key-value lookup, a string logger, and a deliberately slow call —
// without touching the runtime internals. It shows:
//
//   - typed adapters (cage.HostFunc1/2, cage.HostVoid1) deriving the
//     wasm signature from the Go one, including a HostStr (ptr, len)
//     string parameter read through the bounds-checked memory view;
//   - host-side fuel accounting (HostContext.ConsumeFuel) making host
//     work visible to cage.WithFuel budgets;
//   - a blocking host call being interrupted by cage.WithTimeout: the
//     host selects on HostContext.Context and the guest traps with
//     TrapInterrupted instead of hanging the pool.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"cage"
)

const guest = `
extern long kv_get(long key);
extern void log_str(char* p, long n);
extern long slow_io();

long lookup_sum(long n) {
    log_str("summing", 7);
    long s = 0;
    for (long i = 0; i < n; i++) { s = s + kv_get(i); }
    return s;
}

long blocked(long x) {
    return slow_io();
}
`

func main() {
	eng := cage.NewEngine(cage.FullHardening())
	defer eng.Close()

	// Host modules must be registered before the engine's first Call
	// (afterwards NewHostModule fails with ErrEngineStarted).
	hm, err := eng.NewHostModule("env")
	if err != nil {
		log.Fatal(err)
	}

	// A typed host function: long kv_get(long) — the signature is
	// derived from the Go types. ConsumeFuel charges the lookup against
	// any WithFuel budget of the in-flight call.
	store := map[int64]int64{0: 7, 1: 11, 2: 13}
	cage.HostFunc1(hm, "kv_get", func(hc *cage.HostContext, key int64) (int64, error) {
		if err := hc.ConsumeFuel(25); err != nil {
			return 0, err // budget exhausted mid-host-call
		}
		return store[key], nil
	})

	// A string parameter: (char*, long) in C, one HostStr in Go, read
	// through the bounds-checked memory view (tagged pointers welcome).
	cage.HostVoid1(hm, "log_str", func(_ *cage.HostContext, s cage.HostStr) error {
		fmt.Printf("guest says: %q\n", string(s))
		return nil
	})

	// A blocking host call that honors cancellation.
	cage.HostFunc0(hm, "slow_io", func(hc *cage.HostContext) (int64, error) {
		select {
		case <-time.After(10 * time.Second): // a slow backend
			return 1, nil
		case <-hc.Context().Done():
			return 0, hc.Context().Err()
		}
	})

	mod, err := eng.CompileSource(guest)
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Call(context.Background(), mod, "lookup_sum", []uint64{3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lookup_sum(3) = %d (fuel incl. host work: %d)\n", int64(res.Values[0]), res.Fuel)

	// A tight fuel budget is exhausted by the host-side debits.
	_, err = eng.Call(context.Background(), mod, "lookup_sum", []uint64{3}, cage.WithFuel(40))
	fmt.Printf("with 40 fuel: fuel exhausted = %v\n", cage.IsFuelExhausted(err))

	// The blocking host call is cut off by the per-call timeout.
	start := time.Now()
	_, err = eng.Call(context.Background(), mod, "blocked", []uint64{0},
		cage.WithTimeout(100*time.Millisecond))
	fmt.Printf("blocking host call interrupted after %v: %v\n",
		time.Since(start).Round(10*time.Millisecond), cage.IsInterrupted(err))
}
