package serve

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"unsafe"

	"cage/internal/engine"
)

// counterStripes is how many independent copies of each tally a
// counters value spreads its increments across. Power of two so the
// stripe pick is a mask, sized so concurrent requests on different
// cores rarely bounce the same cache line.
const counterStripes = 8

// counterStripe is one copy of the outcome tally. The padding rounds
// the nine hot words up to two cache lines so neighbouring stripes
// never share a line — without it the striping would be cosmetic.
type counterStripe struct {
	requests    atomic.Uint64 // invoke requests received
	ok          atomic.Uint64 // 200 responses
	traps       atomic.Uint64 // guest traps (422)
	interrupted atomic.Uint64 // quota timeouts (408)
	rejected    atomic.Uint64 // admission rejections (429)
	badRequest  atomic.Uint64 // malformed/unknown-target requests (4xx)
	canceled    atomic.Uint64 // client disconnects (no response sent)
	failures    atomic.Uint64 // internal errors (500)
	fuel        atomic.Uint64 // timing-model events consumed, traps included
	_           [128 - 9*8]byte
}

// counters is one outcome-classified request tally, kept per tenant and
// per module. All fields are monotonic; gauges (queue depth, in-flight,
// pool occupancy) live on the tenant and pool instead. Increments go
// through stripe() so concurrent requests spread across padded copies
// instead of serializing on one cache line; snapshot sums the stripes.
type counters struct {
	stripes [counterStripes]counterStripe
}

// stripe picks this goroutine's copy of the tally. Goroutines have no
// visible identity, so the pick hashes the address of a stack local:
// distinct goroutines live on distinct stacks, the address costs
// nothing to produce, and the uintptr conversion never lets the
// pointer escape. Collisions only cost contention, never correctness.
func (c *counters) stripe() *counterStripe {
	var probe byte
	p := uintptr(unsafe.Pointer(&probe))
	p ^= p >> 15
	return &c.stripes[(p>>10)%counterStripes]
}

// CounterStats is the JSON snapshot of one counters value.
type CounterStats struct {
	Requests    uint64 `json:"requests"`
	OK          uint64 `json:"ok"`
	Traps       uint64 `json:"traps"`
	Interrupted uint64 `json:"interrupted"`
	Rejected    uint64 `json:"rejected"`
	BadRequest  uint64 `json:"bad_request"`
	Canceled    uint64 `json:"canceled"`
	Failures    uint64 `json:"failures"`
	Fuel        uint64 `json:"fuel"`
}

func (c *counters) snapshot() CounterStats {
	var out CounterStats
	for i := range c.stripes {
		s := &c.stripes[i]
		out.Requests += s.requests.Load()
		out.OK += s.ok.Load()
		out.Traps += s.traps.Load()
		out.Interrupted += s.interrupted.Load()
		out.Rejected += s.rejected.Load()
		out.BadRequest += s.badRequest.Load()
		out.Canceled += s.canceled.Load()
		out.Failures += s.failures.Load()
		out.Fuel += s.fuel.Load()
	}
	return out
}

// TenantStats is one tenant's /v1/stats entry.
type TenantStats struct {
	CounterStats
	// QueueDepth is how many requests are waiting for an admission slot
	// right now; Active how many are between admission and response.
	QueueDepth int `json:"queue_depth"`
	Active     int `json:"active"`
	// Hardened reports that the tenant's policy runs its invocations on
	// the Spectre-hardened engine.
	Hardened bool `json:"hardened,omitempty"`
}

// PoolSnapshot mirrors engine.PoolStats with JSON tags.
type PoolSnapshot struct {
	Spawned   uint64 `json:"spawned"`
	Recycled  uint64 `json:"recycled"`
	Discarded uint64 `json:"discarded"`
	Idle      int    `json:"idle"`
	Live      int    `json:"live"`
}

func poolSnapshot(s engine.PoolStats) PoolSnapshot {
	return PoolSnapshot{
		Spawned:   s.Spawned,
		Recycled:  s.Recycled,
		Discarded: s.Discarded,
		Idle:      s.Idle,
		Live:      s.Live,
	}
}

// CacheSnapshot mirrors engine.CacheStats with JSON tags.
type CacheSnapshot struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

func cacheSnapshot(s engine.CacheStats) CacheSnapshot {
	return CacheSnapshot{Hits: s.Hits, Misses: s.Misses, Entries: s.Entries}
}

// SnapshotCacheSnapshot mirrors engine.SnapshotCacheStats with JSON
// tags: the snapshot cache's hit/miss/entry counters plus how many
// instance checkouts were served by forking a cached image.
type SnapshotCacheSnapshot struct {
	CacheSnapshot
	Restores uint64 `json:"restores"`
}

func snapshotCacheSnapshot(s engine.SnapshotCacheStats) SnapshotCacheSnapshot {
	return SnapshotCacheSnapshot{CacheSnapshot: cacheSnapshot(s.CacheStats), Restores: s.Restores}
}

// ModuleStats is one module's /v1/stats entry.
type ModuleStats struct {
	CounterStats
	SizeBytes int64 `json:"size_bytes"`
	// Pool is the module's instance-pool occupancy (zero before its
	// first invocation).
	Pool PoolSnapshot `json:"pool"`
}

// Stats is the /v1/stats document.
type Stats struct {
	// Config is the server's sandbox preset name ("full", "sandbox", …).
	Config string `json:"config"`
	// RestoreMode names the snapshot-restore fast path this build forks
	// instances with: "cow" (MAP_PRIVATE copy-on-write image) or "copy"
	// (bulk copy).
	RestoreMode string `json:"restore_mode"`
	// MemoryMode names the linear-memory backend the dispatch tier runs
	// guard32 accesses on: "guard" (cageguard build, vmem reservation,
	// no per-access bounds check) or "bounds" (explicit checks).
	MemoryMode string `json:"memory_mode"`
	// FusionProfile is the identity of the hot-sequence profile driving
	// the superinstruction pass ("none" when fusion is disabled); part
	// of the program-cache key, so it tells a scraper which fused
	// programs this server's caches hold.
	FusionProfile string `json:"fusion_profile"`
	// Modules/Programs are the engine's compiled-module and
	// lowered-program cache counters; Pools sums every module pool.
	ModuleCache  CacheSnapshot `json:"module_cache"`
	ProgramCache CacheSnapshot `json:"program_cache"`
	// Snapshots counts the post-initialization image cache and the
	// checkouts served by forking from it.
	Snapshots SnapshotCacheSnapshot `json:"snapshots"`
	Pools     PoolSnapshot          `json:"pools"`

	Tenants map[string]TenantStats `json:"tenants"`
	Modules map[string]ModuleStats `json:"modules"`
}

// writeProm renders the stats in Prometheus text exposition format,
// deterministically ordered so scrapes (and tests) are stable.
func (s *Stats) writeProm(w io.Writer) {
	fmt.Fprintf(w, "# TYPE cage_requests_total counter\n")
	perCounter := func(labels string, c CounterStats) {
		for _, o := range []struct {
			outcome string
			n       uint64
		}{
			{"ok", c.OK},
			{"trap", c.Traps},
			{"interrupted", c.Interrupted},
			{"rejected", c.Rejected},
			{"bad_request", c.BadRequest},
			{"canceled", c.Canceled},
			{"failure", c.Failures},
		} {
			fmt.Fprintf(w, "cage_requests_total{%s,outcome=%q} %d\n", labels, o.outcome, o.n)
		}
	}
	tenants := sortedKeys(s.Tenants)
	for _, name := range tenants {
		perCounter(fmt.Sprintf("tenant=%q", name), s.Tenants[name].CounterStats)
	}
	modules := sortedKeys(s.Modules)
	for _, id := range modules {
		perCounter(fmt.Sprintf("module=%q", id), s.Modules[id].CounterStats)
	}

	fmt.Fprintf(w, "# TYPE cage_fuel_total counter\n")
	for _, name := range tenants {
		fmt.Fprintf(w, "cage_fuel_total{tenant=%q} %d\n", name, s.Tenants[name].Fuel)
	}
	for _, id := range modules {
		fmt.Fprintf(w, "cage_fuel_total{module=%q} %d\n", id, s.Modules[id].Fuel)
	}

	fmt.Fprintf(w, "# TYPE cage_queue_depth gauge\n")
	for _, name := range tenants {
		fmt.Fprintf(w, "cage_queue_depth{tenant=%q} %d\n", name, s.Tenants[name].QueueDepth)
	}
	fmt.Fprintf(w, "# TYPE cage_active gauge\n")
	for _, name := range tenants {
		fmt.Fprintf(w, "cage_active{tenant=%q} %d\n", name, s.Tenants[name].Active)
	}

	fmt.Fprintf(w, "# TYPE cage_pool_live gauge\n")
	for _, id := range modules {
		fmt.Fprintf(w, "cage_pool_live{module=%q} %d\n", id, s.Modules[id].Pool.Live)
	}
	fmt.Fprintf(w, "# TYPE cage_pool_idle gauge\n")
	for _, id := range modules {
		fmt.Fprintf(w, "cage_pool_idle{module=%q} %d\n", id, s.Modules[id].Pool.Idle)
	}
	fmt.Fprintf(w, "# TYPE cage_pool_spawned_total counter\n")
	for _, id := range modules {
		fmt.Fprintf(w, "cage_pool_spawned_total{module=%q} %d\n", id, s.Modules[id].Pool.Spawned)
	}
	fmt.Fprintf(w, "# TYPE cage_pool_recycled_total counter\n")
	for _, id := range modules {
		fmt.Fprintf(w, "cage_pool_recycled_total{module=%q} %d\n", id, s.Modules[id].Pool.Recycled)
	}

	fmt.Fprintf(w, "# TYPE cage_cache_hits_total counter\n")
	fmt.Fprintf(w, "cage_cache_hits_total{cache=\"module\"} %d\n", s.ModuleCache.Hits)
	fmt.Fprintf(w, "cage_cache_hits_total{cache=\"program\"} %d\n", s.ProgramCache.Hits)
	fmt.Fprintf(w, "cage_cache_hits_total{cache=\"snapshot\"} %d\n", s.Snapshots.Hits)
	fmt.Fprintf(w, "# TYPE cage_cache_misses_total counter\n")
	fmt.Fprintf(w, "cage_cache_misses_total{cache=\"module\"} %d\n", s.ModuleCache.Misses)
	fmt.Fprintf(w, "cage_cache_misses_total{cache=\"program\"} %d\n", s.ProgramCache.Misses)
	fmt.Fprintf(w, "cage_cache_misses_total{cache=\"snapshot\"} %d\n", s.Snapshots.Misses)

	fmt.Fprintf(w, "# TYPE cage_snapshot_restores_total counter\n")
	fmt.Fprintf(w, "cage_snapshot_restores_total %d\n", s.Snapshots.Restores)
	fmt.Fprintf(w, "# TYPE cage_snapshot_restore_mode gauge\n")
	fmt.Fprintf(w, "cage_snapshot_restore_mode{mode=%q} 1\n", s.RestoreMode)
	fmt.Fprintf(w, "# TYPE cage_dispatch_mode gauge\n")
	fmt.Fprintf(w, "cage_dispatch_mode{memory=%q,fusion=%q} 1\n", s.MemoryMode, s.FusionProfile)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
