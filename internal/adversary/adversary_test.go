package adversary

import (
	"bytes"
	"encoding/json"
	"testing"
)

// runDefault evaluates the default matrix once per test binary.
var matrixTable *Table

func defaultTable(t *testing.T) *Table {
	t.Helper()
	if matrixTable == nil {
		tbl, err := Run(DefaultMatrix())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		matrixTable = tbl
	}
	return matrixTable
}

// TestMatrixMatchesOracle is the headline assertion: every cell of the
// scenario × preset matrix agrees with its oracle.
func TestMatrixMatchesOracle(t *testing.T) {
	tbl := defaultTable(t)
	wantCells := len(AllScenarios()) * len(Presets())
	if len(tbl.Cells) != wantCells {
		t.Fatalf("matrix has %d cells, want %d", len(tbl.Cells), wantCells)
	}
	for _, c := range tbl.Mismatches() {
		t.Errorf("%s under %s: observed %+v, oracle expects %+v",
			c.Scenario, c.Config, c.Observed, c.Expected)
	}
}

// TestTable2StillMitigatedUnderHardened pins the acceptance criterion
// that the Spectre hardening does not regress Table 2: every CVE case
// traps with the memory-safety class under full AND hardened.
func TestTable2StillMitigatedUnderHardened(t *testing.T) {
	tbl := defaultTable(t)
	for _, s := range Table2Scenarios() {
		for _, cfg := range []string{"full", "hardened"} {
			c, ok := tbl.Cell(s.Name(), cfg)
			if !ok {
				t.Fatalf("no cell for %s under %s", s.Name(), cfg)
			}
			if c.Observed.Verdict != VerdictTrapped {
				t.Errorf("%s under %s: %s, want trapped", s.Name(), cfg, c.Observed.Verdict)
			}
		}
	}
}

// TestSpeculativeMitigatedOnlyByHardened pins the second criterion: the
// modeled speculative leaks are closed by hardened and by nothing else.
func TestSpeculativeMitigatedOnlyByHardened(t *testing.T) {
	tbl := defaultTable(t)
	for _, s := range SpeculativeScenarios() {
		for _, p := range Presets() {
			c, ok := tbl.Cell(s.Name(), p.Name)
			if !ok {
				t.Fatalf("no cell for %s under %s", s.Name(), p.Name)
			}
			want := VerdictExploited
			if p.Name == "hardened" {
				want = VerdictMitigatedTiming
			}
			if c.Observed.Verdict != want {
				t.Errorf("%s under %s: %s (%s), want %s",
					s.Name(), p.Name, c.Observed.Verdict, c.Observed.Detail, want)
			}
		}
	}
}

// TestCorruptionUnmitigatedEverywhere pins the third criterion:
// in-sandbox corruption succeeds under every preset — a trap here would
// be a false positive in some defense.
func TestCorruptionUnmitigatedEverywhere(t *testing.T) {
	tbl := defaultTable(t)
	for _, s := range CorruptionScenarios() {
		for _, p := range Presets() {
			c, ok := tbl.Cell(s.Name(), p.Name)
			if !ok {
				t.Fatalf("no cell for %s under %s", s.Name(), p.Name)
			}
			if c.Observed.Verdict != VerdictExploited {
				t.Errorf("%s under %s: %s (%s), want exploited",
					s.Name(), p.Name, c.Observed.Verdict, c.Observed.Detail)
			}
		}
	}
}

// TestTableJSONRoundTrip pins the machine-readable encoding: schema
// tag, stable field names, and a lossless decode.
func TestTableJSONRoundTrip(t *testing.T) {
	tbl := defaultTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded Table
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if decoded.Schema != TableSchema {
		t.Fatalf("schema %q, want %q", decoded.Schema, TableSchema)
	}
	if len(decoded.Cells) != len(tbl.Cells) {
		t.Fatalf("decoded %d cells, want %d", len(decoded.Cells), len(tbl.Cells))
	}
	for i, c := range decoded.Cells {
		if c != tbl.Cells[i] {
			t.Fatalf("cell %d round-trip mismatch: %+v vs %+v", i, c, tbl.Cells[i])
		}
	}
}

// TestPresetsResolve pins the matrix columns to the shared CLI names.
func TestPresetsResolve(t *testing.T) {
	ps := Presets()
	if len(ps) != 6 {
		t.Fatalf("have %d presets, want 6", len(ps))
	}
	for _, p := range ps {
		if p.Name == "hardened" && !p.Config.SpectreHarden {
			t.Errorf("hardened preset lost SpectreHarden")
		}
		if p.Name != "hardened" && p.Config.SpectreHarden {
			t.Errorf("%s preset unexpectedly SpectreHarden", p.Name)
		}
	}
}
