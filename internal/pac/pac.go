// Package pac simulates Arm Pointer Authentication (PAC) as Cage uses it
// (paper §2.3, §4.2, §6.3).
//
// PAC signs a pointer with a keyed MAC over the pointer value and a
// user-supplied 64-bit modifier, placing the truncated signature in the
// unused upper bits (layout per ptrlayout, paper Fig. 3). Signed pointers
// must be authenticated before use: authentication recomputes the MAC,
// and on success strips the signature. With FEAT_FPAC (as on the Tensor
// G3) a failed authentication traps immediately; without it the hardware
// instead produces a canonically-invalid pointer that faults on
// dereference.
//
// The hardware uses the QARMA block cipher; the simulation uses
// SipHash-2-4 with a 128-bit key, which preserves the property Cage
// relies on: signatures cannot be forged without the key, and a signature
// minted under one key (instance) never validates under another.
package pac

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cage/internal/ptrlayout"
)

// ErrAuthFailed is returned by Auth when the signature does not match
// and FEAT_FPAC is enabled (trap-on-failure).
var ErrAuthFailed = errors.New("pac: pointer authentication failed")

// Key is a 128-bit PAC key. Arm defines five (IA, IB, DA, DB, GA); Cage
// only needs one data key per process, with per-instance modifiers.
type Key struct {
	k0, k1 uint64
}

// NewKey draws a key from the given entropy source.
func NewKey(r io.Reader) (Key, error) {
	var buf [16]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Key{}, fmt.Errorf("pac: generating key: %w", err)
	}
	return Key{
		k0: binary.LittleEndian.Uint64(buf[0:8]),
		k1: binary.LittleEndian.Uint64(buf[8:16]),
	}, nil
}

// KeyFromSeed derives a deterministic key, for reproducible tests and
// benchmarks.
func KeyFromSeed(seed uint64) Key {
	x := seed
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x * 0x2545F4914F6CDD1D
	}
	if x == 0 {
		x = 0x6a09e667f3bcc909
	}
	return Key{k0: next(), k1: next()}
}

// Config selects the pointer layout and failure behaviour.
type Config struct {
	// Layout determines which bits carry the signature.
	Layout ptrlayout.Layout
	// FPAC, when true, makes Auth return ErrAuthFailed on mismatch
	// (FEAT_FPAC). When false, Auth returns a poisoned pointer with the
	// top signature bit flipped, which faults on dereference.
	FPAC bool
}

// DefaultConfig matches the paper's evaluation platform: Linux layout
// with both MTE and PAC, FEAT_FPAC enabled.
var DefaultConfig = Config{Layout: ptrlayout.MTEAndPAC, FPAC: true}

// sipRound is one SipHash round.
func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = v1<<13 | v1>>51
	v1 ^= v0
	v0 = v0<<32 | v0>>32
	v2 += v3
	v3 = v3<<16 | v3>>48
	v3 ^= v2
	v0 += v3
	v3 = v3<<21 | v3>>43
	v3 ^= v0
	v2 += v1
	v1 = v1<<17 | v1>>47
	v1 ^= v2
	v2 = v2<<32 | v2>>32
	return v0, v1, v2, v3
}

// mac computes SipHash-2-4 over the two 64-bit words (ptr, modifier).
func (k Key) mac(ptr, modifier uint64) uint64 {
	v0 := k.k0 ^ 0x736f6d6570736575
	v1 := k.k1 ^ 0x646f72616e646f6d
	v2 := k.k0 ^ 0x6c7967656e657261
	v3 := k.k1 ^ 0x7465646279746573
	for _, m := range [2]uint64{ptr, modifier} {
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
	}
	// Length block: 16 bytes.
	v3 ^= 16 << 56
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= 16 << 56
	v2 ^= 0xff
	for i := 0; i < 4; i++ {
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	}
	return v0 ^ v1 ^ v2 ^ v3
}

// signable clears the signature field so signing is independent of any
// stale signature bits, but keeps the MTE tag (which rides along in a
// signed pointer, outside the PAC field).
func (c Config) signable(ptr uint64) uint64 {
	return ptr &^ c.Layout.PACMask
}

// Sign computes the signature of ptr under key and modifier and inserts
// it into the PAC field (the pacda instruction; pacdza is Sign with
// modifier 0).
func (c Config) Sign(ptr, modifier uint64, key Key) uint64 {
	base := c.signable(ptr)
	sig := key.mac(base, modifier)
	return c.Layout.Insert(base, sig)
}

// Auth validates the signature of ptr (autda / autdza for modifier 0).
// On success it returns the pointer with the signature stripped. On
// failure it either returns ErrAuthFailed (FPAC) or a poisoned pointer
// that cannot be dereferenced.
func (c Config) Auth(ptr, modifier uint64, key Key) (uint64, error) {
	base := c.signable(ptr)
	want := c.Layout.Extract(c.Layout.Insert(0, key.mac(base, modifier)))
	got := c.Layout.Extract(ptr)
	if want == got {
		return base, nil
	}
	if c.FPAC {
		return 0, ErrAuthFailed
	}
	// Non-FPAC: flip a high bit so the pointer is non-canonical and
	// traps on use, mirroring the architectural error pattern.
	return base ^ (uint64(1) << 62), nil
}

// Strip removes the signature without authenticating (xpacd).
func (c Config) Strip(ptr uint64) uint64 { return c.signable(ptr) }

// SigBits reports the number of signature bits the configuration offers.
func (c Config) SigBits() int { return c.Layout.PACBits() }
