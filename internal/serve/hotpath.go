package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cage"
	"cage/internal/arch"
	"cage/internal/exec"
)

// The invoke hot path. The legacy handler (serve.go) allocates roughly
// a dozen objects per request: the stdlib JSON decoder and its token
// buffers, the InvokeRequest, the argument slice, one CallOption
// closure per quota axis, the context watcher, the EventCounts map,
// and the indenting encoder. Under multicore load those allocations
// dominate the serve layer — the guest call itself is heap-free — so
// this file replaces them with one pooled scratch per request:
//
//   - the body is read into a pooled buffer and parsed in place by a
//     hand-rolled strict parser (anything it does not fully recognize
//     falls back to the stdlib decoder, keeping error semantics
//     bit-identical);
//   - module and function stay []byte views resolved against snapshot
//     maps with no-copy map indexes;
//   - the per-call bounds travel as a cage.CallSpec value (no option
//     closures) with a pooled result buffer;
//   - the 200 response is appended into a pooled byte slice, walking
//     the arch event table directly instead of materializing a map.
//
// Steady-state, an admitted invoke performs zero heap allocations —
// TestServeRequestZeroAlloc gates this in CI.

// invokeScratch is the pooled per-request state.
type invokeScratch struct {
	buf     []byte   // request body (≤ maxInvokeBody, truncated like the legacy LimitReader)
	out     []byte   // 200 response body under construction
	args    []uint64 // parsed argument bits
	results []uint64 // backing array handed to CallSpec.Results

	// Parsed request fields. module and function are views into buf on
	// the fast-parse path and owned copies after a stdlib fallback.
	module    []byte
	function  []byte
	fuel      uint64
	timeoutMs int64

	// Outcome, consumed by the HTTP glue: status 0 means the client is
	// gone and no response is written; StatusOK pairs with out; any
	// other status pairs with apiErr (and retryAfter for 429).
	status     int
	apiErr     apiError
	retryAfter time.Duration
}

var scratchPool = sync.Pool{New: func() any {
	return &invokeScratch{
		buf:     make([]byte, 0, 4096),
		out:     make([]byte, 0, 1024),
		args:    make([]uint64, 0, 16),
		results: make([]uint64, 16),
	}
}}

func getScratch() *invokeScratch   { return scratchPool.Get().(*invokeScratch) }
func putScratch(sc *invokeScratch) { scratchPool.Put(sc) }

// readBody drains r into the scratch buffer, truncating at
// maxInvokeBody exactly like the legacy path's io.LimitReader: the
// parser sees at most the first megabyte either way.
func (sc *invokeScratch) readBody(r io.Reader) error {
	sc.buf = sc.buf[:0]
	for len(sc.buf) < maxInvokeBody {
		if len(sc.buf) == cap(sc.buf) {
			sc.buf = append(sc.buf, 0)[:len(sc.buf)]
		}
		space := sc.buf[len(sc.buf):cap(sc.buf)]
		if over := len(sc.buf) + len(space) - maxInvokeBody; over > 0 {
			space = space[:len(space)-over]
		}
		n, err := r.Read(space)
		sc.buf = sc.buf[:len(sc.buf)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// fail records an error outcome.
func (sc *invokeScratch) fail(status int, code, msg string) {
	sc.status = status
	sc.apiErr = apiError{Code: code, Message: msg}
}

// invokeParser cursors over one request body. Every method reports
// false for anything outside the fast grammar, which sends the body to
// the strict stdlib decoder instead — the fast parser never has to be
// clever about errors, only honest about what it understood.
type invokeParser struct {
	b []byte
	i int
}

func (p *invokeParser) skipWS() {
	for p.i < len(p.b) {
		switch p.b[p.i] {
		case ' ', '\t', '\n', '\r':
			p.i++
		default:
			return
		}
	}
}

func (p *invokeParser) eat(c byte) bool {
	if p.i < len(p.b) && p.b[p.i] == c {
		p.i++
		return true
	}
	return false
}

func (p *invokeParser) peek() byte {
	if p.i < len(p.b) {
		return p.b[p.i]
	}
	return 0
}

// str parses a plain JSON string with no escapes and no control
// characters, returning it as a view into the body.
func (p *invokeParser) str() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.i
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c == '"' {
			s := p.b[start:p.i]
			p.i++
			return s, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.i++
	}
	return nil, false
}

// u64 parses a bare non-negative JSON integer. Leading zeros, signs,
// fractions, exponents, and overflow all report false — the stdlib
// decoder owns their error messages.
func (p *invokeParser) u64() (uint64, bool) {
	start := p.i
	var v uint64
	for p.i < len(p.b) {
		c := p.b[p.i]
		if c < '0' || c > '9' {
			break
		}
		d := uint64(c - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, false
		}
		v = v*10 + d
		p.i++
	}
	n := p.i - start
	if n == 0 || (n > 1 && p.b[start] == '0') {
		return 0, false
	}
	switch p.peek() {
	case '.', 'e', 'E':
		return 0, false
	}
	return v, true
}

func (p *invokeParser) lit(s string) bool {
	if len(p.b)-p.i >= len(s) && string(p.b[p.i:p.i+len(s)]) == s {
		p.i += len(s)
		return true
	}
	return false
}

// parseInvokeFast parses the published invoke-body shape in place,
// filling the scratch's request fields with views into sc.buf. It
// handles exactly what the API documents — an object of the five known
// fields in any order, plain strings, bare integers — and reports
// false on anything else (escapes, floats, negatives, unknown fields,
// malformed JSON, trailing data), so the stdlib fallback keeps error
// semantics identical to the legacy decoder. FuzzServeRequest
// cross-checks the two parsers on every fuzz input.
func (sc *invokeScratch) parseInvokeFast() bool {
	p := invokeParser{b: sc.buf}
	sc.module, sc.function = nil, nil
	sc.args = sc.args[:0]
	sc.fuel, sc.timeoutMs = 0, 0

	p.skipWS()
	if !p.eat('{') {
		return false
	}
	p.skipWS()
	if !p.eat('}') {
		for {
			key, ok := p.str()
			if !ok {
				return false
			}
			p.skipWS()
			if !p.eat(':') {
				return false
			}
			p.skipWS()
			switch string(key) { // compiled without copying
			case "module":
				sc.module, ok = p.str()
			case "function":
				sc.function, ok = p.str()
			case "args":
				ok = p.parseArgs(sc)
			case "fuel":
				sc.fuel, ok = p.u64()
			case "timeout_ms":
				var v uint64
				if v, ok = p.u64(); ok && v <= math.MaxInt64 {
					sc.timeoutMs = int64(v)
				} else {
					ok = false
				}
			default:
				return false // unknown field: the stdlib decoder names it
			}
			if !ok {
				return false
			}
			p.skipWS()
			if p.eat(',') {
				p.skipWS()
				continue
			}
			if p.eat('}') {
				break
			}
			return false
		}
	}
	p.skipWS()
	return p.i == len(p.b)
}

// parseArgs parses the args array (or null). Duplicate "args" keys
// reset the slice, matching the stdlib's last-wins behavior.
func (p *invokeParser) parseArgs(sc *invokeScratch) bool {
	sc.args = sc.args[:0]
	if p.lit("null") {
		return true
	}
	if !p.eat('[') {
		return false
	}
	p.skipWS()
	if p.eat(']') {
		return true
	}
	for {
		v, ok := p.u64()
		if !ok {
			return false
		}
		sc.args = append(sc.args, v)
		p.skipWS()
		if p.eat(',') {
			p.skipWS()
			continue
		}
		return p.eat(']')
	}
}

// validate applies the same post-parse checks (and error text) as
// decodeInvokeRequest, so both parse paths reject identically.
func (sc *invokeScratch) validate() error {
	if len(sc.module) == 0 {
		return errors.New("missing field \"module\"")
	}
	if len(sc.function) == 0 {
		return errors.New("missing field \"function\"")
	}
	if sc.timeoutMs < 0 {
		return errors.New("negative timeout_ms")
	}
	return nil
}

// setFromRequest copies a stdlib-decoded request into the scratch
// (fallback path only; this allocates, the fast path does not).
func (sc *invokeScratch) setFromRequest(req *InvokeRequest) {
	sc.module = []byte(req.Module)
	sc.function = []byte(req.Function)
	sc.args = append(sc.args[:0], req.Args...)
	sc.fuel = req.Fuel
	sc.timeoutMs = req.TimeoutMs
}

// appendInvokeResponse renders the 200 body — the compact form of the
// legacy InvokeResponse encoding, same fields in the same order, with
// the events object built by walking the arch event table (non-zero
// entries only) instead of allocating a map.
func appendInvokeResponse(dst []byte, values []uint64, fuel uint64, ev *arch.Counter) []byte {
	dst = append(dst, `{"values":`...)
	if values == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, v := range values {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = strconv.AppendUint(dst, v, 10)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"fuel":`...)
	dst = strconv.AppendUint(dst, fuel, 10)
	first := true
	for e := arch.Event(0); e < arch.NumEvents; e++ {
		n := ev.Get(e)
		if n == 0 {
			continue
		}
		if first {
			dst = append(dst, `,"events":{`...)
			first = false
		} else {
			dst = append(dst, ',')
		}
		dst = append(dst, '"')
		dst = append(dst, e.String()...)
		dst = append(dst, `":`...)
		dst = strconv.AppendUint(dst, n, 10)
	}
	if !first {
		dst = append(dst, '}')
	}
	dst = append(dst, '}', '\n')
	return dst
}

// handleInvoke answers POST /v1/invoke: HTTP glue around the pooled
// invoke core, or the legacy handler when the A/B knob asks for it.
func (s *Server) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if s.opts.LegacyHotPath {
		s.handleInvokeLegacy(w, r)
		return
	}
	tn := s.tenantFor(r)
	tn.m.stripe().requests.Add(1)
	sc := getScratch()
	defer putScratch(sc)
	if err := sc.readBody(r.Body); err != nil {
		tn.m.stripe().badRequest.Add(1)
		writeError(w, http.StatusBadRequest, apiError{Code: "bad_request", Message: err.Error()})
		return
	}
	s.invokePooled(r.Context(), tn, sc)
	switch sc.status {
	case 0: // client gone: no one to answer
	case http.StatusOK:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(sc.out)
	default:
		if sc.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", strconv.Itoa(int((sc.retryAfter+time.Second-1)/time.Second)))
		}
		writeError(w, sc.status, sc.apiErr)
	}
}

// invokePooled runs one invoke body (already in sc.buf) through
// parse → lookup → admission → snapshot → call, leaving the outcome in
// sc. Accounting matches handleInvokeLegacy decision for decision; the
// admitted 200 path performs zero heap allocations.
func (s *Server) invokePooled(ctx context.Context, tn *tenant, sc *invokeScratch) {
	sc.status = 0
	sc.apiErr = apiError{}
	sc.retryAfter = 0
	tm := tn.m.stripe()

	if !sc.parseInvokeFast() {
		req, err := decodeInvokeRequest(bytes.NewReader(sc.buf))
		if err != nil {
			tm.badRequest.Add(1)
			sc.fail(http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		sc.setFromRequest(req)
	}
	if err := sc.validate(); err != nil {
		tm.badRequest.Add(1)
		sc.fail(http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	entry, ok := s.reg.lookupBytes(sc.module)
	if !ok {
		tm.badRequest.Add(1)
		sc.fail(http.StatusNotFound, "module_not_found",
			fmt.Sprintf("no module %q is registered", sc.module))
		return
	}
	em := entry.m.stripe()
	em.requests.Add(1)
	sig, ok := entry.funcs[string(sc.function)] // no-copy map index
	if !ok {
		tm.badRequest.Add(1)
		em.badRequest.Add(1)
		sc.fail(http.StatusNotFound, "function_not_found",
			fmt.Sprintf("module %q exports no function %q", sc.module, sc.function))
		return
	}
	if len(sc.args) != sig.params {
		tm.badRequest.Add(1)
		em.badRequest.Add(1)
		sc.fail(http.StatusUnprocessableEntity, "bad_arity",
			fmt.Sprintf("%s takes %d arguments, got %d", sig.name, sig.params, len(sc.args)))
		return
	}

	err := tn.admit(ctx)
	switch {
	case errors.Is(err, errQueueFull):
		tm.rejected.Add(1)
		em.rejected.Add(1)
		sc.retryAfter = tn.policy.retryAfter()
		sc.fail(http.StatusTooManyRequests, "queue_full",
			fmt.Sprintf("tenant %q has %d invocations in flight and a full queue", tn.name, tn.policy.MaxConcurrent))
		sc.apiErr.RetryAfterMs = sc.retryAfter.Milliseconds()
		return
	case err != nil: // client disconnected while queued
		tm.canceled.Add(1)
		em.canceled.Add(1)
		return
	}
	defer tn.release()

	tn.active.Add(1)
	defer tn.active.Add(-1)

	eng := s.engineFor(tn)
	if err := s.ensureSnapshot(ctx, tn, entry, eng); err != nil {
		var trap *exec.Trap
		switch {
		case errors.As(err, &trap):
			tm.traps.Add(1)
			em.traps.Add(1)
			sc.fail(http.StatusUnprocessableEntity, "init_trap",
				fmt.Sprintf("pre-initialization %q trapped: %v", entry.initFn, err))
			sc.apiErr.Trap = trap.Code.String()
		case ctx.Err() != nil:
			tm.canceled.Add(1)
			em.canceled.Add(1)
		default:
			tm.failures.Add(1)
			em.failures.Add(1)
			sc.fail(http.StatusInternalServerError, "internal", err.Error())
		}
		return
	}

	spec := tn.callSpec(sc.fuel, time.Duration(sc.timeoutMs)*time.Millisecond)
	spec.Results = sc.results
	res, err := eng.CallWith(ctx, entry.mod, sig.name, sc.args, spec)

	// Fuel is charged win or lose: a trapped call consumed real events.
	tm.fuel.Add(res.Fuel)
	em.fuel.Add(res.Fuel)

	switch {
	case err == nil:
		tm.ok.Add(1)
		em.ok.Add(1)
		sc.out = appendInvokeResponse(sc.out[:0], res.Values, res.Fuel, &res.Events)
		sc.status = http.StatusOK
	case cage.IsInterrupted(err):
		if ctx.Err() != nil {
			// The client is gone; the guest was interrupted at the next
			// checkpoint and its instance reset — just account for it.
			tm.canceled.Add(1)
			em.canceled.Add(1)
			return
		}
		tm.interrupted.Add(1)
		em.interrupted.Add(1)
		sc.fail(http.StatusRequestTimeout, "timeout",
			fmt.Sprintf("call exceeded its %v budget",
				tn.policy.effectiveTimeout(time.Duration(sc.timeoutMs)*time.Millisecond)))
		sc.apiErr.Trap = exec.TrapInterrupted.String()
	default:
		var trap *exec.Trap
		if errors.As(err, &trap) {
			tm.traps.Add(1)
			em.traps.Add(1)
			sc.fail(http.StatusUnprocessableEntity, "guest_trap", err.Error())
			sc.apiErr.Trap = trap.Code.String()
			return
		}
		tm.failures.Add(1)
		em.failures.Add(1)
		sc.fail(http.StatusInternalServerError, "internal", err.Error())
	}
}
