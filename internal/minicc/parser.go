package minicc

import "fmt"

// Parse lexes and parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, structs: make(map[string]*StructInfo)}
	return p.file()
}

type parser struct {
	toks    []Token
	pos     int
	structs map[string]*StructInfo
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) peek() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) isPunct(s string) bool {
	t := p.cur()
	return t.Kind == TokPunct && t.Text == s
}

func (p *parser) isKeyword(s string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == s
}

func (p *parser) accept(s string) bool {
	if p.isPunct(s) || p.isKeyword(s) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(s string) (Token, error) {
	t := p.cur()
	if (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == s {
		return p.next(), nil
	}
	return t, errf(t.Line, t.Col, "expected %q, found %q", s, t.String())
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Line, t.Col, "expected identifier, found %q", t.String())
	}
	return p.next(), nil
}

// typeAhead reports whether the current token starts a type.
func (p *parser) typeAhead() bool {
	t := p.cur()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "void", "char", "int", "long", "float", "double", "unsigned", "struct", "const":
		return true
	}
	return false
}

// baseType parses the type-specifier part (no declarator).
func (p *parser) baseType() (*Type, error) {
	p.accept("const")
	unsigned := p.accept("unsigned")
	p.accept("const")
	t := p.cur()
	if t.Kind != TokKeyword {
		if unsigned { // bare "unsigned" means unsigned int
			return TypeUInt, nil
		}
		return nil, errf(t.Line, t.Col, "expected type, found %q", t.String())
	}
	var base *Type
	switch t.Text {
	case "void":
		base = TypeVoid
	case "char":
		base = TypeChar
		if unsigned {
			base = TypeUChar
		}
	case "int":
		base = TypeInt
		if unsigned {
			base = TypeUInt
		}
	case "long":
		base = TypeLong
		if unsigned {
			base = TypeULong
		}
	case "float":
		base = TypeFloat
	case "double":
		base = TypeDouble
	case "struct":
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		si, ok := p.structs[name.Text]
		if !ok {
			return nil, errf(name.Line, name.Col, "unknown struct %q", name.Text)
		}
		base = &Type{Kind: KStruct, Struct: si}
		for p.accept("*") {
			base = PtrTo(base)
		}
		return base, nil
	default:
		if unsigned {
			return TypeUInt, nil
		}
		return nil, errf(t.Line, t.Col, "expected type, found %q", t.Text)
	}
	p.next()
	if base == TypeLong {
		p.accept("long") // accept "long long" as long
		if p.accept("int") {
		}
	}
	for p.accept("*") {
		base = PtrTo(base)
	}
	return base, nil
}

// declarator parses an identifier with optional array bounds or the
// function-pointer form (*name)(params). It returns the final type.
type declarator struct {
	name Token
	typ  *Type
}

func (p *parser) declarator(base *Type) (declarator, error) {
	// Function-pointer form: ( * name ) ( types )
	if p.isPunct("(") && p.peek().Kind == TokPunct && p.peek().Text == "*" {
		p.next() // (
		p.next() // *
		name, err := p.expectIdent()
		if err != nil {
			return declarator{}, err
		}
		if _, err := p.expect(")"); err != nil {
			return declarator{}, err
		}
		sig, err := p.paramTypes()
		if err != nil {
			return declarator{}, err
		}
		sig.Ret = base
		return declarator{name: name, typ: &Type{Kind: KFunc, Sig: sig}}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return declarator{}, err
	}
	typ := base
	var dims []int64
	for p.accept("[") {
		sz := p.cur()
		if sz.Kind != TokIntLit {
			return declarator{}, errf(sz.Line, sz.Col, "array bound must be an integer literal")
		}
		p.next()
		if _, err := p.expect("]"); err != nil {
			return declarator{}, err
		}
		dims = append(dims, sz.Int)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = ArrayOf(typ, dims[i])
	}
	return declarator{name: name, typ: typ}, nil
}

// paramTypes parses "( type, type, ... )" for function-pointer types.
func (p *parser) paramTypes() (*FuncSig, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	sig := &FuncSig{}
	if p.accept(")") {
		return sig, nil
	}
	if p.isKeyword("void") && p.peek().Kind == TokPunct && p.peek().Text == ")" {
		p.next()
		p.next()
		return sig, nil
	}
	for {
		t, err := p.baseType()
		if err != nil {
			return nil, err
		}
		// Optional parameter name.
		if p.cur().Kind == TokIdent {
			p.next()
		}
		sig.Params = append(sig.Params, t.Decay())
		if p.accept(")") {
			return sig, nil
		}
		if _, err := p.expect(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) file() (*File, error) {
	f := &File{}
	for p.cur().Kind != TokEOF {
		switch {
		case p.isKeyword("struct") && p.peek().Kind == TokIdent &&
			p.toks[min(p.pos+2, len(p.toks)-1)].Text == "{":
			if err := p.structDef(f); err != nil {
				return nil, err
			}
		case p.isKeyword("extern"):
			if err := p.externDecl(f); err != nil {
				return nil, err
			}
		default:
			p.accept("static")
			base, err := p.baseType()
			if err != nil {
				return nil, err
			}
			if err := p.topLevel(f, base); err != nil {
				return nil, err
			}
		}
	}
	return f, nil
}

func (p *parser) structDef(f *File) error {
	p.next() // struct
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if _, err := p.expect("{"); err != nil {
		return err
	}
	si := &StructInfo{Name: name.Text}
	p.structs[name.Text] = si // allow self-referential pointers
	for !p.accept("}") {
		base, err := p.baseType()
		if err != nil {
			return err
		}
		for {
			d, err := p.declarator(base)
			if err != nil {
				return err
			}
			si.Fields = append(si.Fields, Field{Name: d.name.Text, Type: d.typ})
			if p.accept(",") {
				continue
			}
			break
		}
		if _, err := p.expect(";"); err != nil {
			return err
		}
	}
	if _, err := p.expect(";"); err != nil {
		return err
	}
	f.Structs = append(f.Structs, si)
	return nil
}

func (p *parser) externDecl(f *File) error {
	p.next() // extern
	ret, err := p.baseType()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	sig, err := p.paramTypes()
	if err != nil {
		return err
	}
	sig.Ret = ret
	if _, err := p.expect(";"); err != nil {
		return err
	}
	f.Externs = append(f.Externs, &ExternDecl{Name: name.Text, Sig: sig})
	return nil
}

// topLevel parses a function definition or global variable(s) after the
// base type has been consumed.
func (p *parser) topLevel(f *File, base *Type) error {
	d, err := p.declarator(base)
	if err != nil {
		return err
	}
	// Function definition or prototype.
	if p.isPunct("(") && d.typ == base {
		sig := &FuncSig{Ret: base}
		params, err := p.funcParams(sig)
		if err != nil {
			return err
		}
		if p.accept(";") { // prototype: treat as extern-to-self, ignored
			return nil
		}
		body, err := p.block()
		if err != nil {
			return err
		}
		f.Funcs = append(f.Funcs, &FuncDecl{
			Name: d.name.Text, Params: params, Ret: base, Body: body, Line: d.name.Line,
		})
		return nil
	}
	// Global variable list.
	for {
		var init Expr
		if p.accept("=") {
			init, err = p.assignExpr()
			if err != nil {
				return err
			}
		}
		f.Globals = append(f.Globals, &GlobalDecl{Name: d.name.Text, Typ: d.typ, Init: init})
		if p.accept(",") {
			d, err = p.declarator(base)
			if err != nil {
				return err
			}
			continue
		}
		break
	}
	_, err = p.expect(";")
	return err
}

func (p *parser) funcParams(sig *FuncSig) ([]Param, error) {
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var params []Param
	if p.accept(")") {
		return params, nil
	}
	if p.isKeyword("void") && p.peek().Text == ")" {
		p.next()
		p.next()
		return params, nil
	}
	for {
		base, err := p.baseType()
		if err != nil {
			return nil, err
		}
		d, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		pt := d.typ.Decay()
		params = append(params, Param{Name: d.name.Text, Typ: pt})
		sig.Params = append(sig.Params, pt)
		if p.accept(")") {
			return params, nil
		}
		if _, err := p.expect(","); err != nil {
			return nil, err
		}
	}
}

func (p *parser) block() (*BlockStmt, error) {
	if _, err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.accept("}") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.isPunct("{"):
		return p.block()
	case p.typeAhead():
		return p.declStmt()
	case p.isKeyword("if"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		then, err := p.statement()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept("else") {
			if els, err = p.statement(); err != nil {
				return nil, err
			}
		}
		return &IfStmt{Cond: cond, Then: then, Else: els}, nil
	case p.isKeyword("for"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		var init Stmt
		var err error
		if !p.accept(";") {
			if p.typeAhead() {
				init, err = p.declStmt()
			} else {
				var e Expr
				e, err = p.expr()
				if err == nil {
					_, err = p.expect(";")
				}
				init = &ExprStmt{X: e}
			}
			if err != nil {
				return nil, err
			}
		}
		var cond Expr
		if !p.accept(";") {
			if cond, err = p.expr(); err != nil {
				return nil, err
			}
			if _, err = p.expect(";"); err != nil {
				return nil, err
			}
		}
		var post Expr
		if !p.isPunct(")") {
			if post, err = p.expr(); err != nil {
				return nil, err
			}
		}
		if _, err = p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil
	case p.isKeyword("while"):
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body}, nil
	case p.isKeyword("do"):
		p.next()
		body, err := p.statement()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("while"); err != nil {
			return nil, err
		}
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &WhileStmt{Cond: cond, Body: body, DoWhile: true}, nil
	case p.isKeyword("return"):
		p.next()
		if p.accept(";") {
			return &ReturnStmt{}, nil
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ReturnStmt{X: x}, nil
	case p.isKeyword("break"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &BreakStmt{}, nil
	case p.isKeyword("continue"):
		p.next()
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ContinueStmt{}, nil
	case p.accept(";"):
		return &BlockStmt{}, nil
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(";"); err != nil {
			return nil, err
		}
		return &ExprStmt{X: x}, nil
	}
}

func (p *parser) declStmt() (Stmt, error) {
	base, err := p.baseType()
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for {
		d, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept("=") {
			if init, err = p.assignExpr(); err != nil {
				return nil, err
			}
		}
		b.Stmts = append(b.Stmts, &DeclStmt{Name: d.name.Text, Typ: d.typ, Init: init, Line: d.name.Line})
		if p.accept(",") {
			continue
		}
		break
	}
	if _, err := p.expect(";"); err != nil {
		return nil, err
	}
	if len(b.Stmts) == 1 {
		return b.Stmts[0], nil
	}
	return b, nil
}

// Expression parsing: precedence climbing.

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

var assignOps = map[string]bool{
	"=": true, "+=": true, "-=": true, "*=": true, "/=": true, "%=": true,
	"<<=": true, ">>=": true, "&=": true, "|=": true, "^=": true,
}

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.Kind == TokPunct && assignOps[t.Text] {
		p.next()
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		return &Assign{exprBase: at(t), Op: t.Text, LHS: lhs, RHS: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) condExpr() (Expr, error) {
	c, err := p.binExpr(0)
	if err != nil {
		return nil, err
	}
	if p.isPunct("?") {
		t := p.next()
		tt, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(":"); err != nil {
			return nil, err
		}
		ff, err := p.condExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{exprBase: at(t), C: c, T: tt, F: ff}, nil
	}
	return c, nil
}

// binLevels orders binary operators from lowest to highest precedence.
var binLevels = [][]string{
	{"||"},
	{"&&"},
	{"|"},
	{"^"},
	{"&"},
	{"==", "!="},
	{"<", ">", "<=", ">="},
	{"<<", ">>"},
	{"+", "-"},
	{"*", "/", "%"},
}

func (p *parser) binExpr(level int) (Expr, error) {
	if level >= len(binLevels) {
		return p.unaryExpr()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		matched := false
		if t.Kind == TokPunct {
			for _, op := range binLevels[level] {
				if t.Text == op {
					matched = true
					break
				}
			}
		}
		if !matched {
			return lhs, nil
		}
		p.next()
		rhs, err := p.binExpr(level + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: at(t), Op: t.Text, X: lhs, Y: rhs}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	t := p.cur()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&", "++", "--", "+":
			p.next()
			x, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			if t.Text == "+" {
				return x, nil
			}
			return &Unary{exprBase: at(t), Op: t.Text, X: x}, nil
		case "(":
			// Cast or parenthesized expression.
			save := p.pos
			p.next()
			if p.typeAhead() {
				to, err := p.baseType()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(")"); err != nil {
					return nil, err
				}
				x, err := p.unaryExpr()
				if err != nil {
					return nil, err
				}
				return &Cast{exprBase: at(t), To: to, X: x}, nil
			}
			p.pos = save
		}
	}
	if t.Kind == TokKeyword && t.Text == "sizeof" {
		p.next()
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		if p.typeAhead() {
			ty, err := p.baseType()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return &SizeofExpr{exprBase: at(t), OfType: ty}, nil
		}
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		return &SizeofExpr{exprBase: at(t), OfExpr: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.Kind != TokPunct {
			return x, nil
		}
		switch t.Text {
		case "[":
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: at(t), X: x, Idx: idx}
		case "(":
			p.next()
			call := &Call{exprBase: at(t), Fun: x}
			if !p.accept(")") {
				for {
					a, err := p.assignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(")") {
						break
					}
					if _, err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			x = call
		case ".", "->":
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Member{exprBase: at(t), X: x, Name: name.Text, Arrow: t.Text == "->"}
		case "++", "--":
			p.next()
			x = &Postfix{exprBase: at(t), Op: t.Text, X: x}
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit, TokCharLit:
		p.next()
		return &IntLit{exprBase: at(t), Val: t.Int}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{exprBase: at(t), Val: t.Float}, nil
	case TokStrLit:
		p.next()
		return &StrLit{exprBase: at(t), Val: t.Text}, nil
	case TokIdent:
		p.next()
		return &Ident{exprBase: at(t), Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			return x, nil
		}
	}
	return nil, errf(t.Line, t.Col, "unexpected token %q in expression", t.String())
}

var _ = fmt.Sprintf
