//go:build cagecow && linux && arm64

package exec

// memfd_create on linux/arm64.
const sysMemfdCreate = 279
