package exec

import (
	"context"
	"testing"
	"time"

	"cage/internal/ir"
	"cage/internal/wasm"
)

// callLoopModule builds f() calling g(i) 256 times in a loop — the
// steady-state guest→guest call workload the zero-allocation gate
// measures — plus the identity callee g.
func callLoopModule() *wasm.Module {
	m := &wasm.Module{}
	tF := m.AddType(wasm.FuncType{})
	tG := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []wasm.Function{
		{TypeIdx: tF, Locals: []wasm.ValType{wasm.I64}, Body: []wasm.Instr{
			wasm.Block(wasm.BlockVoid),
			wasm.Loop(wasm.BlockVoid),
			wasm.LocalGet(0), wasm.I64Const(256), wasm.Op(wasm.OpI64GeS), wasm.BrIf(1),
			wasm.LocalGet(0), wasm.Call(1), wasm.Op(wasm.OpDrop),
			wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Add), wasm.LocalSet(0),
			wasm.Br(0),
			wasm.End(),
			wasm.End(),
			wasm.End(),
		}},
		{TypeIdx: tG, Body: []wasm.Instr{wasm.LocalGet(0), wasm.End()}},
	}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	return m
}

// recModule builds f(n): n <= 0 ? 0 : f(n-1)+1 — one activation per
// recursion step, for the exact frame-count bound tests.
func recModule() *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{
		wasm.Block(wasm.BlockVoid),
		wasm.LocalGet(0), wasm.I64Const(0), wasm.Op(wasm.OpI64GtS), wasm.BrIf(0),
		wasm.I64Const(0), wasm.Op(wasm.OpReturn),
		wasm.End(),
		wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Sub),
		wasm.Call(0),
		wasm.I64Const(1), wasm.Op(wasm.OpI64Add),
		wasm.End(),
	}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	return m
}

// TestGuestCallZeroAlloc is the allocation gate for the frame machine:
// once the arena and frame stack are warm, an unmetered invocation
// whose guest makes hundreds of guest→guest calls must allocate
// nothing. testing.AllocsPerRun performs a warm-up run before
// measuring, which is exactly the pooled steady state (the arena is
// retained across calls and across Reset).
func TestGuestCallZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector instruments allocations; the gate runs in the non-race suite")
	}
	inst, err := NewInstance(callLoopModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var callErr error
	avg := testing.AllocsPerRun(100, func() {
		if _, err := inst.Invoke("f"); err != nil {
			callErr = err
		}
	})
	if callErr != nil {
		t.Fatal(callErr)
	}
	if avg != 0 {
		t.Errorf("steady-state guest→guest call workload allocates %.1f objects per invocation, want 0", avg)
	}
}

// TestStackOverflowExactDepth pins the frame-count bound to an exact
// activation count: f(n) needs n+1 frames, so under MaxCallDepth d the
// deepest success is f(d-1) and f(d) traps — deterministically, with
// TrapStackOverflow.
func TestStackOverflowExactDepth(t *testing.T) {
	inst, err := NewInstance(recModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	const depth = 10
	res, err := inst.InvokeWith(context.Background(), "f", []uint64{depth - 1},
		CallOptions{MaxCallDepth: depth})
	if err != nil {
		t.Fatalf("f(%d) under %d frames should fit exactly: %v", depth-1, depth, err)
	}
	if res.Values[0] != depth-1 {
		t.Fatalf("f(%d) = %d", depth-1, res.Values[0])
	}
	for i := 0; i < 2; i++ { // the boundary is deterministic
		_, err = inst.InvokeWith(context.Background(), "f", []uint64{depth},
			CallOptions{MaxCallDepth: depth})
		if !IsTrap(err, TrapStackOverflow) {
			t.Fatalf("f(%d) under %d frames = %v, want TrapStackOverflow", depth, depth, err)
		}
	}
}

// TestStackOverflowArenaBound: the value-arena bound is enforced in
// words, exactly and deterministically, independent of the frame count.
func TestStackOverflowArenaBound(t *testing.T) {
	inst, err := NewInstance(recModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	frameSize := inst.Program().Funcs[0].FrameSize
	if frameSize <= 0 {
		t.Fatalf("FrameSize = %d", frameSize)
	}
	// Find the deepest recursion a small word budget admits, then pin
	// the boundary: n succeeds, n+1 traps with TrapStackOverflow, twice.
	budget := uint64(8 * frameSize)
	deepest := -1
	for n := 0; n < 64; n++ {
		_, err := inst.InvokeWith(context.Background(), "f", []uint64{uint64(n)},
			CallOptions{MaxStackWords: budget})
		if err != nil {
			if !IsTrap(err, TrapStackOverflow) {
				t.Fatalf("f(%d) under %d words = %v, want TrapStackOverflow", n, budget, err)
			}
			deepest = n - 1
			break
		}
	}
	if deepest < 0 {
		t.Fatal("word budget never tripped")
	}
	for i := 0; i < 2; i++ {
		if _, err := inst.InvokeWith(context.Background(), "f", []uint64{uint64(deepest)},
			CallOptions{MaxStackWords: budget}); err != nil {
			t.Fatalf("boundary not deterministic: f(%d) = %v", deepest, err)
		}
		_, err := inst.InvokeWith(context.Background(), "f", []uint64{uint64(deepest + 1)},
			CallOptions{MaxStackWords: budget})
		if !IsTrap(err, TrapStackOverflow) {
			t.Fatalf("boundary not deterministic: f(%d) = %v, want TrapStackOverflow", deepest+1, err)
		}
	}
}

// TestBrIfZOnlyLoopInterruptible is the regression test for the missed
// interruption checkpoint on taken OpBrIfZ branches: a loop whose only
// taken edge is a BrIfZ must still be stopped by a deadline and by a
// fuel budget. Valid wasm always lowers loop back-edges to metered
// br/br_if/br_table, so the loop is built directly in lowered form (a
// synthetic ir.Program attached via Config.Program) — the shape a buggy
// or adversarial lowering could produce.
func TestBrIfZOnlyLoopInterruptible(t *testing.T) {
	m := &wasm.Module{}
	ti := m.AddType(wasm.FuncType{})
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: []wasm.Instr{wasm.Op(wasm.OpEnd)}}}
	m.Exports = []wasm.Export{{Name: "f", Kind: wasm.ExportFunc, Idx: 0}}
	prog := &ir.Program{
		Cfg: ir.Config{Mode: ir.ModeGuard32},
		Funcs: []ir.Func{{
			MaxStack:  1,
			FrameSize: 1,
			Code: []ir.Instr{
				{Op: ir.OpConst, A: 0},
				{Op: ir.OpBrIfZ, B: 0}, // always taken, always backward
				{Op: ir.OpRetEnd, A: 0},
			},
		}},
	}
	inst, err := NewInstance(m, Config{Program: prog})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := inst.InvokeWith(ctx, "f", nil, CallOptions{}); !IsTrap(err, TrapInterrupted) {
		t.Fatalf("BrIfZ-only loop under a deadline = %v, want TrapInterrupted", err)
	}
	if _, err := inst.InvokeWith(context.Background(), "f", nil, CallOptions{Fuel: 1000}); !IsTrap(err, TrapFuelExhausted) {
		t.Fatalf("BrIfZ-only loop under fuel = %v, want TrapFuelExhausted", err)
	}
}

// TestHostReentryBarrier: a host function re-enters the guest while the
// outer activation's frame — locals and a partially built operand
// stack — is live in the arena. The re-entrant call stacks above the
// barrier, recurses deep enough to force the arena to grow (so the
// outer frame's cached views must be re-derived, not reused), and the
// outer activation still completes with the right values.
func TestHostReentryBarrier(t *testing.T) {
	m := &wasm.Module{}
	tHost := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	tRec := m.AddType(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	m.Imports = []wasm.Import{{Module: "env", Name: "reenter", TypeIdx: tHost}}
	m.Funcs = []wasm.Function{
		// f(n) = 2n + reenter(n), with 2n parked on the operand stack
		// across the host crossing.
		{TypeIdx: tRec, Body: []wasm.Instr{
			wasm.LocalGet(0), wasm.I64Const(2), wasm.Op(wasm.OpI64Mul),
			wasm.LocalGet(0), wasm.Call(0),
			wasm.Op(wasm.OpI64Add),
			wasm.End(),
		}},
		// deep(n): n <= 0 ? 0 : deep(n-1)+1.
		{TypeIdx: tRec, Body: []wasm.Instr{
			wasm.Block(wasm.BlockVoid),
			wasm.LocalGet(0), wasm.I64Const(0), wasm.Op(wasm.OpI64GtS), wasm.BrIf(0),
			wasm.I64Const(0), wasm.Op(wasm.OpReturn),
			wasm.End(),
			wasm.LocalGet(0), wasm.I64Const(1), wasm.Op(wasm.OpI64Sub),
			wasm.Call(2),
			wasm.I64Const(1), wasm.Op(wasm.OpI64Add),
			wasm.End(),
		}},
	}
	m.Exports = []wasm.Export{
		{Name: "f", Kind: wasm.ExportFunc, Idx: 1},
		{Name: "deep", Kind: wasm.ExportFunc, Idx: 2},
	}

	linker := NewLinker()
	linker.Define("env", "reenter", HostFunc{
		Type: wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}},
		Fn: func(hc *HostContext, args []uint64) ([]uint64, error) {
			res, err := hc.Call(nil, "deep", []uint64{args[0]})
			if err != nil {
				return nil, err
			}
			return []uint64{res[0] * 10}, nil
		},
	})
	inst, err := NewInstance(m, Config{Linker: linker})
	if err != nil {
		t.Fatal(err)
	}

	// Small first: f(5) = 10 + 50.
	res, err := inst.Invoke("f", 5)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 60 {
		t.Fatalf("f(5) = %d, want 60", res[0])
	}

	// Now force arena growth inside the host call: 500 recursion frames
	// stack above f's live frame. f(500) = 1000 + 5000.
	res, err = inst.Invoke("f", 500)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 6000 {
		t.Fatalf("f(500) = %d, want 6000 (outer frame corrupted across re-entry)", res[0])
	}
}

// TestArenaRetainedAcrossReset: Reset keeps the arena and frame-stack
// capacity (the steady-state zero-allocation property of pooled
// instances) while scrubbing their contents.
func TestArenaRetainedAcrossReset(t *testing.T) {
	inst, err := NewInstance(recModule(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Invoke("f", 100); err != nil {
		t.Fatal(err)
	}
	arenaCap := cap(inst.vals)
	frameCap := cap(inst.frames)
	if arenaCap == 0 || frameCap == 0 {
		t.Fatalf("arena not materialized: vals %d frames %d", arenaCap, frameCap)
	}
	if err := inst.Reset(42); err != nil {
		t.Fatal(err)
	}
	if cap(inst.vals) != arenaCap || cap(inst.frames) != frameCap {
		t.Errorf("Reset dropped the arena: vals %d→%d, frames %d→%d",
			arenaCap, cap(inst.vals), frameCap, cap(inst.frames))
	}
	for i, v := range inst.vals {
		if v != 0 {
			t.Fatalf("arena slot %d = %#x after Reset, want scrubbed", i, v)
		}
	}
	res, err := inst.Invoke("f", 100)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 100 {
		t.Fatalf("f(100) after Reset = %d", res[0])
	}
}
