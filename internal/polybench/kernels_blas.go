package polybench

// Linear-algebra kernels: gemm, 2mm, 3mm, atax, bicg, gemver, gesummv,
// mvt, syrk, syr2k.

func init() {
	register(Kernel{
		Name: "gemm", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double* C = (double*)malloc(n * n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
            C[i * n + j] = initC(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = C[i * n + j] * beta;
            for (long k = 0; k < n; k++) {
                s += alpha * A[i * n + k] * B[k * n + j];
            }
            C[i * n + j] = s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += C[i * n + j]; }
    }
    free((char*)A); free((char*)B); free((char*)C);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B, C := matA(n), matB(n), matC(n)
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := C[i*n+j] * beta
					for k := 0; k < n; k++ {
						s += alpha * A[i*n+k] * B[k*n+j]
					}
					C[i*n+j] = s
				}
			}
			return sum(C)
		},
	})

	register(Kernel{
		Name: "2mm", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double* C = (double*)malloc(n * n * 8);
    double* D = (double*)malloc(n * n * 8);
    double* tmp = (double*)malloc(n * n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
            C[i * n + j] = initC(i, j, n);
            D[i * n + j] = initD(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = 0.0;
            for (long k = 0; k < n; k++) { s += alpha * A[i * n + k] * B[k * n + j]; }
            tmp[i * n + j] = s;
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = D[i * n + j] * beta;
            for (long k = 0; k < n; k++) { s += tmp[i * n + k] * C[k * n + j]; }
            D[i * n + j] = s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += D[i * n + j]; }
    }
    free((char*)A); free((char*)B); free((char*)C); free((char*)D); free((char*)tmp);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B, C, D := matA(n), matB(n), matC(n), matD(n)
			tmp := make([]float64, n*n)
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := 0.0
					for k := 0; k < n; k++ {
						s += alpha * A[i*n+k] * B[k*n+j]
					}
					tmp[i*n+j] = s
				}
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := D[i*n+j] * beta
					for k := 0; k < n; k++ {
						s += tmp[i*n+k] * C[k*n+j]
					}
					D[i*n+j] = s
				}
			}
			return sum(D)
		},
	})

	register(Kernel{
		Name: "3mm", TestN: 10, BenchN: 20,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double* C = (double*)malloc(n * n * 8);
    double* D = (double*)malloc(n * n * 8);
    double* E = (double*)malloc(n * n * 8);
    double* F = (double*)malloc(n * n * 8);
    double* G = (double*)malloc(n * n * 8);
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
            C[i * n + j] = initC(i, j, n);
            D[i * n + j] = initD(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = 0.0;
            for (long k = 0; k < n; k++) { s += A[i * n + k] * B[k * n + j]; }
            E[i * n + j] = s;
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = 0.0;
            for (long k = 0; k < n; k++) { s += C[i * n + k] * D[k * n + j]; }
            F[i * n + j] = s;
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = 0.0;
            for (long k = 0; k < n; k++) { s += E[i * n + k] * F[k * n + j]; }
            G[i * n + j] = s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += G[i * n + j]; }
    }
    free((char*)A); free((char*)B); free((char*)C); free((char*)D);
    free((char*)E); free((char*)F); free((char*)G);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B, C, D := matA(n), matB(n), matC(n), matD(n)
			E := make([]float64, n*n)
			F := make([]float64, n*n)
			G := make([]float64, n*n)
			mm := func(dst, x, y []float64) {
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						s := 0.0
						for k := 0; k < n; k++ {
							s += x[i*n+k] * y[k*n+j]
						}
						dst[i*n+j] = s
					}
				}
			}
			mm(E, A, B)
			mm(F, C, D)
			mm(G, E, F)
			return sum(G)
		},
	})

	register(Kernel{
		Name: "atax", TestN: 24, BenchN: 64,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* x = (double*)malloc(n * 8);
    double* y = (double*)malloc(n * 8);
    double* t = (double*)malloc(n * 8);
    for (long i = 0; i < n; i++) {
        x[i] = initV(i, n);
        y[i] = 0.0;
        for (long j = 0; j < n; j++) { A[i * n + j] = initA(i, j, n); }
    }
    for (long i = 0; i < n; i++) {
        double s = 0.0;
        for (long j = 0; j < n; j++) { s += A[i * n + j] * x[j]; }
        t[i] = s;
    }
    for (long j = 0; j < n; j++) {
        double s = y[j];
        for (long i = 0; i < n; i++) { s += A[i * n + j] * t[i]; }
        y[j] = s;
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += y[i]; }
    free((char*)A); free((char*)x); free((char*)y); free((char*)t);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, x := matA(n), vecV(n)
			y := make([]float64, n)
			t := make([]float64, n)
			for i := 0; i < n; i++ {
				s := 0.0
				for j := 0; j < n; j++ {
					s += A[i*n+j] * x[j]
				}
				t[i] = s
			}
			for j := 0; j < n; j++ {
				s := y[j]
				for i := 0; i < n; i++ {
					s += A[i*n+j] * t[i]
				}
				y[j] = s
			}
			return sum(y)
		},
	})

	register(Kernel{
		Name: "bicg", TestN: 24, BenchN: 64,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* p = (double*)malloc(n * 8);
    double* r = (double*)malloc(n * 8);
    double* q = (double*)malloc(n * 8);
    double* s = (double*)malloc(n * 8);
    for (long i = 0; i < n; i++) {
        p[i] = initV(i, n);
        r[i] = initV(i + 1, n);
        q[i] = 0.0;
        s[i] = 0.0;
        for (long j = 0; j < n; j++) { A[i * n + j] = initA(i, j, n); }
    }
    for (long i = 0; i < n; i++) {
        double acc = 0.0;
        for (long j = 0; j < n; j++) {
            s[j] = s[j] + r[i] * A[i * n + j];
            acc += A[i * n + j] * p[j];
        }
        q[i] = acc;
    }
    double out = 0.0;
    for (long i = 0; i < n; i++) { out += q[i] + s[i]; }
    free((char*)A); free((char*)p); free((char*)r); free((char*)q); free((char*)s);
    return out;
}`,
		Reference: func(n int) float64 {
			A := matA(n)
			p := vecV(n)
			r := make([]float64, n)
			for i := 0; i < n; i++ {
				r[i] = refInitV(i+1, n)
			}
			q := make([]float64, n)
			s := make([]float64, n)
			for i := 0; i < n; i++ {
				acc := 0.0
				for j := 0; j < n; j++ {
					s[j] = s[j] + r[i]*A[i*n+j]
					acc += A[i*n+j] * p[j]
				}
				q[i] = acc
			}
			out := 0.0
			for i := 0; i < n; i++ {
				out += q[i] + s[i]
			}
			return out
		},
	})

	register(Kernel{
		Name: "gemver", TestN: 24, BenchN: 64,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* u1 = (double*)malloc(n * 8);
    double* v1 = (double*)malloc(n * 8);
    double* u2 = (double*)malloc(n * 8);
    double* v2 = (double*)malloc(n * 8);
    double* w = (double*)malloc(n * 8);
    double* x = (double*)malloc(n * 8);
    double* y = (double*)malloc(n * 8);
    double* z = (double*)malloc(n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        u1[i] = initV(i, n);
        u2[i] = initV(i + 1, n);
        v1[i] = initV(i + 2, n);
        v2[i] = initV(i + 3, n);
        y[i] = initV(i + 4, n);
        z[i] = initV(i + 5, n);
        x[i] = 0.0;
        w[i] = 0.0;
        for (long j = 0; j < n; j++) { A[i * n + j] = initA(i, j, n); }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = A[i * n + j] + u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    for (long i = 0; i < n; i++) {
        double s = x[i];
        for (long j = 0; j < n; j++) { s += beta * A[j * n + i] * y[j]; }
        x[i] = s;
    }
    for (long i = 0; i < n; i++) { x[i] = x[i] + z[i]; }
    for (long i = 0; i < n; i++) {
        double s = w[i];
        for (long j = 0; j < n; j++) { s += alpha * A[i * n + j] * x[j]; }
        w[i] = s;
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += w[i]; }
    free((char*)A); free((char*)u1); free((char*)v1); free((char*)u2); free((char*)v2);
    free((char*)w); free((char*)x); free((char*)y); free((char*)z);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := matA(n)
			u1 := make([]float64, n)
			u2 := make([]float64, n)
			v1 := make([]float64, n)
			v2 := make([]float64, n)
			y := make([]float64, n)
			z := make([]float64, n)
			x := make([]float64, n)
			w := make([]float64, n)
			for i := 0; i < n; i++ {
				u1[i] = refInitV(i, n)
				u2[i] = refInitV(i+1, n)
				v1[i] = refInitV(i+2, n)
				v2[i] = refInitV(i+3, n)
				y[i] = refInitV(i+4, n)
				z[i] = refInitV(i+5, n)
			}
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					A[i*n+j] = A[i*n+j] + u1[i]*v1[j] + u2[i]*v2[j]
				}
			}
			for i := 0; i < n; i++ {
				s := x[i]
				for j := 0; j < n; j++ {
					s += beta * A[j*n+i] * y[j]
				}
				x[i] = s
			}
			for i := 0; i < n; i++ {
				x[i] = x[i] + z[i]
			}
			for i := 0; i < n; i++ {
				s := w[i]
				for j := 0; j < n; j++ {
					s += alpha * A[i*n+j] * x[j]
				}
				w[i] = s
			}
			return sum(w)
		},
	})

	register(Kernel{
		Name: "gesummv", TestN: 24, BenchN: 64,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double* x = (double*)malloc(n * 8);
    double* y = (double*)malloc(n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        x[i] = initV(i, n);
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        double t = 0.0;
        double u = 0.0;
        for (long j = 0; j < n; j++) {
            t += A[i * n + j] * x[j];
            u += B[i * n + j] * x[j];
        }
        y[i] = alpha * t + beta * u;
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += y[i]; }
    free((char*)A); free((char*)B); free((char*)x); free((char*)y);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B, x := matA(n), matB(n), vecV(n)
			y := make([]float64, n)
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				t, u := 0.0, 0.0
				for j := 0; j < n; j++ {
					t += A[i*n+j] * x[j]
					u += B[i*n+j] * x[j]
				}
				y[i] = alpha*t + beta*u
			}
			return sum(y)
		},
	})

	register(Kernel{
		Name: "mvt", TestN: 24, BenchN: 64,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* x1 = (double*)malloc(n * 8);
    double* x2 = (double*)malloc(n * 8);
    double* y1 = (double*)malloc(n * 8);
    double* y2 = (double*)malloc(n * 8);
    for (long i = 0; i < n; i++) {
        x1[i] = initV(i, n);
        x2[i] = initV(i + 1, n);
        y1[i] = initV(i + 2, n);
        y2[i] = initV(i + 3, n);
        for (long j = 0; j < n; j++) { A[i * n + j] = initA(i, j, n); }
    }
    for (long i = 0; i < n; i++) {
        double s = x1[i];
        for (long j = 0; j < n; j++) { s += A[i * n + j] * y1[j]; }
        x1[i] = s;
    }
    for (long i = 0; i < n; i++) {
        double s = x2[i];
        for (long j = 0; j < n; j++) { s += A[j * n + i] * y2[j]; }
        x2[i] = s;
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) { acc += x1[i] + x2[i]; }
    free((char*)A); free((char*)x1); free((char*)x2); free((char*)y1); free((char*)y2);
    return acc;
}`,
		Reference: func(n int) float64 {
			A := matA(n)
			x1 := vecV(n)
			x2 := make([]float64, n)
			y1 := make([]float64, n)
			y2 := make([]float64, n)
			for i := 0; i < n; i++ {
				x2[i] = refInitV(i+1, n)
				y1[i] = refInitV(i+2, n)
				y2[i] = refInitV(i+3, n)
			}
			for i := 0; i < n; i++ {
				s := x1[i]
				for j := 0; j < n; j++ {
					s += A[i*n+j] * y1[j]
				}
				x1[i] = s
			}
			for i := 0; i < n; i++ {
				s := x2[i]
				for j := 0; j < n; j++ {
					s += A[j*n+i] * y2[j]
				}
				x2[i] = s
			}
			out := 0.0
			for i := 0; i < n; i++ {
				out += x1[i] + x2[i]
			}
			return out
		},
	})

	register(Kernel{
		Name: "syrk", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* C = (double*)malloc(n * n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            C[i * n + j] = initC(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = C[i * n + j] * beta;
            for (long k = 0; k < n; k++) {
                s += alpha * A[i * n + k] * A[j * n + k];
            }
            C[i * n + j] = s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += C[i * n + j]; }
    }
    free((char*)A); free((char*)C);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, C := matA(n), matC(n)
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := C[i*n+j] * beta
					for k := 0; k < n; k++ {
						s += alpha * A[i*n+k] * A[j*n+k]
					}
					C[i*n+j] = s
				}
			}
			return sum(C)
		},
	})

	register(Kernel{
		Name: "syr2k", TestN: 12, BenchN: 24,
		Source: prelude + initHelpers + `
double run(long n) {
    double* A = (double*)malloc(n * n * 8);
    double* B = (double*)malloc(n * n * 8);
    double* C = (double*)malloc(n * n * 8);
    double alpha = 1.5;
    double beta = 1.2;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            A[i * n + j] = initA(i, j, n);
            B[i * n + j] = initB(i, j, n);
            C[i * n + j] = initC(i, j, n);
        }
    }
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) {
            double s = C[i * n + j] * beta;
            for (long k = 0; k < n; k++) {
                s += alpha * A[i * n + k] * B[j * n + k];
                s += alpha * B[i * n + k] * A[j * n + k];
            }
            C[i * n + j] = s;
        }
    }
    double acc = 0.0;
    for (long i = 0; i < n; i++) {
        for (long j = 0; j < n; j++) { acc += C[i * n + j]; }
    }
    free((char*)A); free((char*)B); free((char*)C);
    return acc;
}`,
		Reference: func(n int) float64 {
			A, B, C := matA(n), matB(n), matC(n)
			alpha, beta := 1.5, 1.2
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					s := C[i*n+j] * beta
					for k := 0; k < n; k++ {
						s += alpha * A[i*n+k] * B[j*n+k]
						s += alpha * B[i*n+k] * A[j*n+k]
					}
					C[i*n+j] = s
				}
			}
			return sum(C)
		},
	})
}
