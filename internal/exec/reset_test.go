package exec

import (
	"testing"

	"cage/internal/core"
	"cage/internal/mte"
	"cage/internal/wasm"
)

func resetTestModule() *wasm.Module {
	return &wasm.Module{
		Mems:  []wasm.MemoryType{{Limits: wasm.Limits{Min: 1, Max: 4, HasMax: true}, Memory64: true}},
		Datas: []wasm.DataSegment{{Offset: 8, Bytes: []byte("cage")}},
	}
}

// TestResetRestoresMemoryDataAndHostReserve covers both reset paths: the
// in-place zeroing path (no growth) and the shrink-after-grow path, and
// in both checks that the host-reserve pattern is restored even when a
// previous lifetime corrupted it.
func TestResetRestoresMemoryDataAndHostReserve(t *testing.T) {
	inst, err := NewInstance(resetTestModule(), Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkFresh := func(when string) {
		t.Helper()
		if got := inst.MemorySize(); got != wasm.PageSize {
			t.Fatalf("%s: memory size %d, want %d", when, got, wasm.PageSize)
		}
		if inst.Memory()[0] != 0 {
			t.Errorf("%s: guest memory not zeroed", when)
		}
		if string(inst.Memory()[8:12]) != "cage" {
			t.Errorf("%s: data segment not replayed", when)
		}
		for i, b := range inst.HostRegion() {
			if b != 0x5A {
				t.Errorf("%s: host reserve byte %d = %#x, want 0x5A", when, i, b)
				break
			}
		}
	}

	// Lifetime 1: corrupt guest memory and the host reserve, no growth.
	inst.Memory()[0] = 0xFF
	copy(inst.Memory()[8:], "XXXX")
	inst.HostRegion()[0] = 0x00
	if err := inst.Reset(2); err != nil {
		t.Fatal(err)
	}
	checkFresh("in-place reset")

	// Lifetime 2: grow memory, corrupt again; reset must shrink back.
	if old := inst.GrowMemory(2); old == ^uint64(0) {
		t.Fatal("grow failed")
	}
	inst.HostRegion()[1] = 0x77
	if err := inst.Reset(3); err != nil {
		t.Fatal(err)
	}
	checkFresh("shrink reset")
}

// TestResetClearsTagsAndLatchedFaults checks that MTE state from a
// previous lifetime — segment tags and latched asynchronous faults —
// does not survive a reset.
func TestResetClearsTagsAndLatchedFaults(t *testing.T) {
	inst, err := NewInstance(resetTestModule(), Config{
		Features: core.Features{MemSafety: true, MTEMode: mte.ModeAsync},
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := inst.HostSegmentNew(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Tags().TagAt(64) == 0 {
		t.Fatal("segment.new left granule untagged")
	}
	// Latch an async fault by checking with the wrong tag.
	if err := inst.Tags().CheckAccess(64, 8, 0, false); err != nil {
		t.Fatalf("async mode should latch, not fault: %v", err)
	}
	if err := inst.Reset(9); err != nil {
		t.Fatal(err)
	}
	if got := inst.Tags().TagAt(64); got != 0 {
		t.Errorf("granule tag %#x survived reset, want 0", got)
	}
	if f := inst.Tags().PendingFault(); f != nil {
		t.Errorf("latched fault survived reset: %v", f)
	}
	_ = tagged
}

// TestCloseReleasesTagAndRejectsReset checks teardown: Close returns
// the sandbox tag and a closed instance refuses recycling.
func TestCloseReleasesTagAndRejectsReset(t *testing.T) {
	pol := core.NewPolicy(core.Features{Sandbox: true, MTEMode: mte.ModeSync})
	sandboxes := core.NewSandboxAllocator(pol)
	inst, err := NewInstance(resetTestModule(), Config{
		Features:  core.Features{Sandbox: true, MTEMode: mte.ModeSync},
		Seed:      1,
		Sandboxes: sandboxes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sandboxes.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", sandboxes.InUse())
	}
	if err := inst.Close(); err != nil {
		t.Fatal(err)
	}
	if sandboxes.InUse() != 0 {
		t.Errorf("InUse after Close = %d, want 0", sandboxes.InUse())
	}
	if err := inst.Close(); err != nil {
		t.Errorf("second Close: %v, want idempotent nil", err)
	}
	if err := inst.Reset(2); err == nil {
		t.Error("Reset of closed instance succeeded")
	}
}
