// Package arch provides analytic timing models of the three Tensor G3
// cores the paper evaluates on (Cortex-X3, Cortex-A715, Cortex-A510).
//
// The paper measures real hardware; this reproduction substitutes
// deterministic per-core models with three layers:
//
//  1. an instruction pipeline model (pipeline.go) parameterized with
//     execution-unit counts, initiation intervals, and latencies for the
//     MTE and PAC instruction families — microbenchmarks over this model
//     regenerate paper Table 1;
//  2. a memory-stream model (stream.go) with per-core store bandwidth and
//     per-granule tag-check/tag-store costs — regenerates Fig. 4 and
//     Fig. 16;
//  3. a lowered-code cost table (cost.go) assigning cycle costs to the
//     events the wasm engine reports (ALU ops, loads/stores, bounds
//     checks, tag checks, pointer masking, PAC ops) — regenerates
//     Fig. 14 and Fig. 15.
//
// The out-of-order cores speculate through bounds-check branches, so
// explicit wasm64 bounds checks cost them little; the in-order A510
// cannot, which is exactly the asymmetry that makes MTE-based sandboxing
// attractive (paper §3, §7.2).
package arch

import "cage/internal/mte"

// InstClass enumerates the MTE/PAC instructions of paper Table 1.
type InstClass int

const (
	IRG InstClass = iota
	ADDG
	SUBG
	SUBP
	SUBPS
	STG
	ST2G
	STZG
	ST2ZG
	STGP
	LDG
	PACDZA
	PACDA
	AUTDZA
	AUTDA
	XPACD
	numInstClasses
)

var instNames = [...]string{
	IRG: "irg", ADDG: "addg", SUBG: "subg", SUBP: "subp", SUBPS: "subps",
	STG: "stg", ST2G: "st2g", STZG: "stzg", ST2ZG: "st2zg", STGP: "stgp",
	LDG: "ldg", PACDZA: "pacdza", PACDA: "pacda", AUTDZA: "autdza",
	AUTDA: "autda", XPACD: "xpacd",
}

// String returns the instruction mnemonic.
func (c InstClass) String() string {
	if int(c) < len(instNames) {
		return instNames[c]
	}
	return "inst(?)"
}

// MTEInstClasses lists the MTE rows of Table 1 in paper order.
var MTEInstClasses = []InstClass{IRG, ADDG, SUBG, SUBP, SUBPS, STG, ST2G, STZG, ST2ZG, STGP, LDG}

// PACInstClasses lists the PAC rows of Table 1 in paper order.
var PACInstClasses = []InstClass{PACDZA, PACDA, AUTDZA, AUTDA, XPACD}

// HasLatencyRow reports whether Table 1 lists a latency for the class
// (tag store/load instructions only have throughput measured).
func (c InstClass) HasLatencyRow() bool {
	switch c {
	case STG, ST2G, STZG, ST2ZG, STGP, LDG:
		return false
	}
	return true
}

// OpTiming parameterizes one instruction class on one core.
type OpTiming struct {
	// Units is the effective number of execution units able to start the
	// op each cycle (may be fractional to model µop splitting).
	Units float64
	// II is the initiation interval of one unit in cycles: a unit can
	// start a new op of this class every II cycles.
	II float64
	// Latency is the result latency in cycles for dependent consumers.
	Latency float64
}

// Throughput returns the peak sustainable instructions per cycle.
func (t OpTiming) Throughput(issueWidth float64) float64 {
	tp := t.Units / t.II
	if tp > issueWidth {
		return issueWidth
	}
	return tp
}

// Core is the timing model for one CPU core.
type Core struct {
	// Name is the marketing name, e.g. "Cortex-X3".
	Name string
	// ClockGHz is the core clock in GHz.
	ClockGHz float64
	// OutOfOrder reports whether the core speculates and reorders.
	OutOfOrder bool
	// IssueWidth is the front-end issue width in instructions/cycle.
	IssueWidth float64
	// Timing holds the MTE/PAC instruction parameters.
	Timing [numInstClasses]OpTiming
	// Wasm is the lowered-wasm event cost table (cost.go).
	Wasm WasmCosts
	// Stream is the memory-stream model (stream.go).
	Stream StreamModel
}

// timing fetches the parameters for class c.
func (c *Core) timing(cl InstClass) OpTiming { return c.Timing[cl] }

// Millis converts a cycle count on this core into milliseconds.
func (c *Core) Millis(cycles float64) float64 {
	return cycles / (c.ClockGHz * 1e9) * 1e3
}

// tuned builds an OpTiming whose pipeline-simulated throughput and
// latency match the targets (tp in instructions/cycle, lat in cycles).
func tuned(tp, lat float64) OpTiming {
	// One "effective unit" per unit of throughput with II 1 reproduces
	// tp exactly in the pipeline model; latency is carried through.
	return OpTiming{Units: tp, II: 1, Latency: lat}
}

// NewCortexX3 models the big out-of-order core (2.91 GHz).
// Timing parameters derive from the microbenchmark methodology of paper
// §2.3: unrolled independent streams for throughput, dependency chains
// for latency.
func NewCortexX3() *Core {
	c := &Core{
		Name:       "Cortex-X3",
		ClockGHz:   2.91,
		OutOfOrder: true,
		IssueWidth: 6,
	}
	c.Timing[IRG] = tuned(1.34, 1.99)
	c.Timing[ADDG] = tuned(2.01, 1.99)
	c.Timing[SUBG] = tuned(2.01, 1.99)
	c.Timing[SUBP] = tuned(3.49, 0.99)
	c.Timing[SUBPS] = tuned(2.88, 0.99)
	c.Timing[STG] = tuned(1.00, 0)
	c.Timing[ST2G] = tuned(1.00, 0)
	c.Timing[STZG] = tuned(1.00, 0)
	c.Timing[ST2ZG] = tuned(0.34, 0)
	c.Timing[STGP] = tuned(1.00, 0)
	c.Timing[LDG] = tuned(2.92, 0)
	c.Timing[PACDZA] = tuned(1.01, 4.97)
	c.Timing[PACDA] = tuned(1.01, 4.97)
	c.Timing[AUTDZA] = tuned(1.01, 4.97)
	c.Timing[AUTDA] = tuned(1.01, 4.97)
	c.Timing[XPACD] = tuned(1.01, 1.99)
	c.Wasm = wasmCostsX3
	c.Stream = streamX3
	return c
}

// NewCortexA715 models the mid out-of-order core (2.37 GHz).
func NewCortexA715() *Core {
	c := &Core{
		Name:       "Cortex-A715",
		ClockGHz:   2.37,
		OutOfOrder: true,
		IssueWidth: 5,
	}
	c.Timing[IRG] = tuned(1.00, 2.00)
	c.Timing[ADDG] = tuned(3.81, 1.00)
	c.Timing[SUBG] = tuned(3.81, 1.00)
	c.Timing[SUBP] = tuned(3.81, 1.00)
	c.Timing[SUBPS] = tuned(3.80, 1.00)
	c.Timing[STG] = tuned(1.81, 0)
	c.Timing[ST2G] = tuned(1.84, 0)
	c.Timing[STZG] = tuned(1.84, 0)
	c.Timing[ST2ZG] = tuned(1.79, 0)
	c.Timing[STGP] = tuned(1.69, 0)
	c.Timing[LDG] = tuned(1.91, 0)
	c.Timing[PACDZA] = tuned(1.51, 5.00)
	c.Timing[PACDA] = tuned(1.42, 5.00)
	c.Timing[AUTDZA] = tuned(1.51, 5.00)
	c.Timing[AUTDA] = tuned(1.43, 5.00)
	c.Timing[XPACD] = tuned(1.56, 2.00)
	c.Wasm = wasmCostsA715
	c.Stream = streamA715
	return c
}

// NewCortexA510 models the little in-order core (1.7 GHz).
func NewCortexA510() *Core {
	c := &Core{
		Name:       "Cortex-A510",
		ClockGHz:   1.7,
		OutOfOrder: false,
		IssueWidth: 3,
	}
	c.Timing[IRG] = tuned(0.50, 3.00)
	c.Timing[ADDG] = tuned(2.22, 2.00)
	c.Timing[SUBG] = tuned(2.22, 2.00)
	c.Timing[SUBP] = tuned(2.50, 2.00)
	c.Timing[SUBPS] = tuned(2.50, 2.00)
	c.Timing[STG] = tuned(1.00, 0)
	c.Timing[ST2G] = tuned(0.46, 0)
	c.Timing[STZG] = tuned(0.98, 0)
	c.Timing[ST2ZG] = tuned(0.45, 0)
	c.Timing[STGP] = tuned(0.98, 0)
	c.Timing[LDG] = tuned(0.93, 0)
	c.Timing[PACDZA] = tuned(0.20, 4.99)
	c.Timing[PACDA] = tuned(0.20, 5.00)
	c.Timing[AUTDZA] = tuned(0.20, 7.99)
	c.Timing[AUTDA] = tuned(0.20, 7.99)
	c.Timing[XPACD] = tuned(0.20, 4.99)
	c.Wasm = wasmCostsA510
	c.Stream = streamA510
	return c
}

// Cores returns the three Tensor G3 core models in paper order.
func Cores() []*Core {
	return []*Core{NewCortexX3(), NewCortexA715(), NewCortexA510()}
}

// CoreByName looks a core model up by (case-sensitive) name.
func CoreByName(name string) *Core {
	for _, c := range Cores() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TagStoreClass maps an mte tag-store variant to its instruction class.
func TagStoreClass(op mte.TagStoreOp) InstClass {
	switch op {
	case mte.OpSTG:
		return STG
	case mte.OpST2G:
		return ST2G
	case mte.OpSTZG:
		return STZG
	case mte.OpST2ZG:
		return ST2ZG
	case mte.OpSTGP:
		return STGP
	}
	return STG
}
