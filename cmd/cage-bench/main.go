// Command cage-bench regenerates the paper's tables and figures.
//
// With -json it instead emits one machine-readable document (schema
// cage-bench/v2) with per-kernel wall time, timing-model event counts,
// and fuel consumed for every Table 3 variant, plus host-call and
// guest-call microbenchmark records — the format CI archives as a
// perf-trajectory artifact. v2 is a superset of v1; see
// internal/bench.JSONSchema for the compatibility note.
//
// With -mitigation it emits only the Spectre-mitigation record: the
// per-kernel fuel/cycle tax the hardened preset pays over full (whose
// results it must reproduce bit-identically) together with the
// adversary verdict table — every scenario of internal/adversary under
// every preset. CI archives the document as BENCH_mitigation.json.
//
// With -dispatch it emits only the dispatch-tier record: legacy vs
// lowered vs profile-guided fused wall time per kernel and config
// (guard32 and full-cage), with the fusion profile recorded in-run. On
// cageguard builds the guard32 rows run on the vmem guard backend. CI
// archives the document as BENCH_dispatch.json.
//
// With -record-profile it runs the polybench kernels with the
// hot-sequence recorder armed and emits the merged profile — the
// document checked in as internal/profile/corpus/polybench.json, the
// runtime's default fusion profile.
//
// Usage:
//
//	cage-bench [-quick] [-exp all|table1|table2|fig4|fig14|fig15|fig16|startup|mem|security]
//	cage-bench [-quick] -json
//	cage-bench [-quick] -mitigation
//	cage-bench [-quick] -dispatch
//	cage-bench [-quick] -record-profile
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"cage/internal/adversary"
	"cage/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "use small problem sizes")
	exp := flag.String("exp", "all", "which experiment to run")
	jsonOut := flag.Bool("json", false, "emit per-kernel JSON (ns/op, event counts, fuel) instead of the report tables")
	snapshotOut := flag.Bool("snapshot", false, "emit only the snapshot (fresh vs restore) JSON record")
	mitigationOut := flag.Bool("mitigation", false, "emit only the Spectre-mitigation (hardened vs full) JSON record")
	dispatchOut := flag.Bool("dispatch", false, "emit only the dispatch-tier (legacy vs lowered vs fused) JSON record")
	recordProfile := flag.Bool("record-profile", false, "record the polybench hot-sequence corpus and emit it as a profile JSON document")
	flag.Parse()

	w := os.Stdout
	var err error
	if *recordProfile {
		if err := bench.WriteProfileJSON(w, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *dispatchOut {
		if err := bench.WriteDispatchJSON(w, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *snapshotOut {
		if err := bench.WriteSnapshotJSON(w, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *mitigationOut {
		// The scenario half of the record is the adversary verdict
		// table, evaluated here and attached pre-encoded (internal/bench
		// cannot import internal/adversary; see MitigationRecord).
		tbl, err := adversary.Run(adversary.DefaultMatrix())
		if err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: adversary matrix: %v\n", err)
			os.Exit(1)
		}
		var buf bytes.Buffer
		if err := tbl.WriteJSON(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
			os.Exit(1)
		}
		if err := bench.WriteMitigationJSON(w, *quick, buf.Bytes()); err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *jsonOut {
		if *exp != "all" {
			// -json is its own sweep (every kernel × every Table 3
			// variant); silently dropping an explicit -exp selection
			// would mislead.
			fmt.Fprintln(os.Stderr, "cage-bench: -json does not combine with -exp")
			os.Exit(2)
		}
		if err := bench.WriteJSON(w, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	switch *exp {
	case "all":
		err = bench.RunAll(w, *quick)
	case "table1":
		bench.Table1Report(w)
	case "table2":
		err = bench.Table2Report(w)
	case "fig4":
		bench.Fig4Report(w)
	case "fig14":
		var r *bench.Fig14Result
		if r, err = bench.RunFig14(*quick); err == nil {
			r.Report(w)
		}
	case "fig15":
		var r *bench.Fig15Result
		if r, err = bench.RunFig15(*quick); err == nil {
			r.Report(w)
		}
	case "fig16":
		bench.Fig16Report(w)
	case "startup":
		err = bench.StartupReport(w)
	case "mem":
		err = bench.MemoryReport(w, *quick)
	case "security":
		bench.SecurityReport(w)
	default:
		fmt.Fprintf(os.Stderr, "cage-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "cage-bench: %v\n", err)
		os.Exit(1)
	}
}
