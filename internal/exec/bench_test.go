package exec_test

import (
	"testing"

	"cage/internal/arch"
	"cage/internal/codegen"
	"cage/internal/core"
	"cage/internal/exec"
	"cage/internal/fuse"
	"cage/internal/minicc"
	"cage/internal/polybench"
	"cage/internal/profile"
)

// BenchmarkLoweredVsLegacy is the before/after of the dispatch tiers:
// the same instantiated PolyBench kernel invoked through the legacy
// re-scanning interpreter (the pre-refactor engine, preserved in
// legacy.go), through the lowered flat-dispatch loop, and through the
// fused superinstruction tier driven by the checked-in polybench
// corpus (the runtime's default profile). The guard32 rows run wasm32
// kernels — on cageguard builds they use the vmem guard-region backend,
// so guard32/fused is the full tentpole configuration the ≥2.5×-over-
// legacy target is measured on. Kernels free their allocations, so one
// instance serves every iteration and the delta is pure dispatch.
func BenchmarkLoweredVsLegacy(b *testing.B) {
	for _, kernel := range []string{"gemm", "jacobi-1d"} {
		k, err := polybench.ByName(kernel)
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range []struct {
			name  string
			opts  codegen.Options
			feats core.Features
		}{
			{"guard32", codegen.Options{Wasm64: false}, core.Features{}},
			{"baseline64", codegen.Options{Wasm64: true}, core.Features{}},
			{"full-cage", codegen.Options{Wasm64: true, StackSanitizer: true, PtrAuth: true}, core.CageAll()},
		} {
			m, err := polybench.Build(k, cfg.opts)
			if err != nil {
				b.Fatal(err)
			}
			n := uint64(k.TestN)

			b.Run(kernel+"/"+cfg.name+"/legacy", func(b *testing.B) {
				var ctr arch.Counter
				inst := newKernelInstance(b, m, cfg.feats, &ctr)
				lr, err := exec.NewLegacyRunner(inst)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := lr.Invoke("run", n); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(kernel+"/"+cfg.name+"/lowered", func(b *testing.B) {
				var ctr arch.Counter
				inst := newKernelInstance(b, m, cfg.feats, &ctr)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.Invoke("run", n); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(kernel+"/"+cfg.name+"/fused", func(b *testing.B) {
				prog, err := exec.LowerModule(m, exec.Config{Features: cfg.feats})
				if err != nil {
					b.Fatal(err)
				}
				var ctr arch.Counter
				inst := newFusedBenchInstance(b, m, cfg.feats, &ctr,
					fuse.Fuse(prog, profile.Default()))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := inst.Invoke("run", n); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCallOverhead is the before/after of the frame machine on
// call-dominated workloads: recursive fib (exponential call tree) and
// mutual recursion (deep alternating call chain), under the legacy
// recursive interpreter — which pays Go's call stack and a fresh
// locals/args/results allocation per call — and under the frame
// machine's contiguous-arena, zero-allocation call path. The
// call_overhead record of cage-bench -json reports the same kernels.
func BenchmarkCallOverhead(b *testing.B) {
	// The kernels are the differential suite's call kernels
	// (callKernelSources, differential_test.go) minus "deep" — fib and
	// mutual are the overhead-dominated shapes worth timing.
	for _, k := range callKernelSources {
		if k.name == "deep" {
			continue
		}
		file, err := minicc.Parse(k.src)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := minicc.Analyze(file, minicc.Layout64)
		if err != nil {
			b.Fatal(err)
		}
		m, err := codegen.Compile(prog, codegen.Options{Wasm64: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(k.name+"/legacy", func(b *testing.B) {
			inst, err := exec.NewInstance(m, exec.Config{})
			if err != nil {
				b.Fatal(err)
			}
			lr, err := exec.NewLegacyRunner(inst)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := lr.Invoke("run", k.arg)
				if err != nil {
					b.Fatal(err)
				}
				if res[0] != k.want {
					b.Fatalf("run(%d) = %d, want %d", k.arg, res[0], k.want)
				}
			}
		})
		b.Run(k.name+"/framemachine", func(b *testing.B) {
			inst, err := exec.NewInstance(m, exec.Config{})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := inst.Invoke("run", k.arg)
				if err != nil {
					b.Fatal(err)
				}
				if res[0] != k.want {
					b.Fatalf("run(%d) = %d, want %d", k.arg, res[0], k.want)
				}
			}
		})
	}
}
