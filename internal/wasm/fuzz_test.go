package wasm

import (
	"bytes"
	"testing"
)

// seedModules builds a corpus of well-formed modules covering every
// section and instruction family the decoder handles, so the fuzzer
// starts from deep program points instead of flailing at the header.
func seedModules(t testing.TB) [][]byte {
	t.Helper()
	i64_1 := FuncType{Params: []ValType{I64}, Results: []ValType{I64}}
	void := FuncType{}

	arith := &Module{
		Types: []FuncType{i64_1},
		Funcs: []Function{{TypeIdx: 0, Body: []Instr{
			LocalGet(0), I64Const(3), Op(OpI64Mul),
			I64Const(1), Op(OpI64Add),
			F64Const(1.5), Op(OpI64TruncF64S), Op(OpI64Xor),
			F32Const(0.25), Op(OpI32TruncF32U), Op(OpI64ExtendI32U), Op(OpI64Or),
			End(),
		}}},
		Exports: []Export{{Name: "arith", Kind: ExportFunc, Idx: 0}},
	}

	start := uint32(1)
	control := &Module{
		Types: []FuncType{i64_1, void},
		Funcs: []Function{
			{TypeIdx: 0, Locals: []ValType{I64, I64}, Body: []Instr{
				Block(BlockVoid),
				Loop(BlockVoid),
				LocalGet(0), Op(OpI64Eqz), BrIf(1),
				LocalGet(0), I64Const(1), Op(OpI64Sub), LocalSet(0),
				Br(0),
				End(),
				End(),
				LocalGet(0),
				If(BlockI64), I64Const(1), Else(), I64Const(2), End(),
				Block(BlockVoid),
				Block(BlockVoid),
				LocalGet(0), Op(OpI32WrapI64),
				BrTable([]uint32{0, 1}, 1),
				End(),
				End(),
				Op(OpReturn),
				End(),
			}},
			{TypeIdx: 1, Body: []Instr{Op(OpNop), End()}},
		},
		Start:   &start,
		Exports: []Export{{Name: "ctl", Kind: ExportFunc, Idx: 0}},
	}

	memory := &Module{
		Types: []FuncType{i64_1, void},
		Mems:  []MemoryType{{Limits: Limits{Min: 1, Max: 4, HasMax: true}, Memory64: true}},
		Funcs: []Function{
			{TypeIdx: 0, Body: []Instr{
				LocalGet(0), Load(OpI64Load, 8),
				LocalGet(0), Load(OpI32Load8S, 0), Op(OpI64ExtendI32S), Op(OpI64Add),
				LocalGet(0), LocalGet(0), Store(OpI64Store32, 16),
				I64Const(0), I64Const(0), I64Const(64), Op(OpMemoryFill),
				I64Const(64), I64Const(0), I64Const(32), Op(OpMemoryCopy),
				Op(OpMemorySize), Op(OpI64Add),
				End(),
			}},
			{TypeIdx: 1, Body: []Instr{
				I64Const(0), I64Const(16), SegmentNew(0),
				I64Const(16), SegmentFree(0),
				I64Const(32), PointerSign(), PointerAuth(), Op(OpDrop),
				End(),
			}},
		},
		Globals: []Global{
			{Type: GlobalType{Type: I64, Mutable: true}, Init: 4096},
			{Type: GlobalType{Type: F64}, Init: F64Bits(2.5)},
		},
		Datas:   []DataSegment{{Offset: 8, Bytes: []byte("cage")}},
		Exports: []Export{{Name: "mem", Kind: ExportFunc, Idx: 0}, {Name: "__heap_base", Kind: ExportGlobal, Idx: 0}},
	}

	indirect := &Module{
		Types: []FuncType{i64_1},
		Imports: []Import{
			{Module: "env", Name: "sqrt", TypeIdx: 0},
		},
		Funcs: []Function{{TypeIdx: 0, Body: []Instr{
			LocalGet(0),
			I32Const(0), CallIndirect(0),
			Call(0),
			End(),
		}}},
		Tables:  []TableType{{Limits: Limits{Min: 2}}},
		Elems:   []ElemSegment{{Offset: 0, Funcs: []uint32{1}}},
		Exports: []Export{{Name: "ind", Kind: ExportFunc, Idx: 1}},
	}

	var seeds [][]byte
	for _, m := range []*Module{arith, control, memory, indirect} {
		bin, err := Encode(m)
		if err != nil {
			t.Fatalf("encoding seed module: %v", err)
		}
		seeds = append(seeds, bin)
	}
	return seeds
}

// FuzzDecode asserts the decoder's robustness contract: arbitrary bytes
// never panic, and any image that decodes and validates round-trips
// stably (decode → encode → decode → encode reproduces the identical
// binary).
func FuzzDecode(f *testing.F) {
	for _, seed := range seedModules(f) {
		f.Add(seed)
	}
	// Header-adjacent edge cases.
	f.Add([]byte{})
	f.Add(magicHeader)
	f.Add(append(append([]byte{}, magicHeader...), 0x01, 0x03, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if err := Validate(m); err != nil {
			return
		}
		bin, err := Encode(m)
		if err != nil {
			// A decoded, validated module must be encodable.
			t.Fatalf("encode after decode+validate: %v", err)
		}
		m2, err := Decode(bin)
		if err != nil {
			t.Fatalf("re-decode of own encoding: %v", err)
		}
		bin2, err := Encode(m2)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(bin, bin2) {
			t.Fatalf("round-trip not stable:\n first: %x\nsecond: %x", bin, bin2)
		}
	})
}

// TestDecodeLocalsBound pins the run-length amplification guard: a tiny
// code section declaring 2^32-ish locals must be rejected, not
// allocated.
func TestDecodeLocalsBound(t *testing.T) {
	m := &Module{
		Types: []FuncType{{}},
		Funcs: []Function{{TypeIdx: 0, Body: []Instr{End()}}},
	}
	bin, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	// Patch the code section: rewrite the single body to declare one
	// run of 0xFFFFFFFF i64 locals. Encode the replacement body and
	// splice it over the old code section.
	body := appendULEB(nil, 1)               // one locals run
	body = appendULEB(body, 0xFFFFFFFF)      // count
	body = append(body, byte(I64))           // type
	body = append(body, byte(OpEnd))         // body
	sec := appendULEB(nil, 1)                // one function body
	sec = appendULEB(sec, uint64(len(body))) // body size
	sec = append(sec, body...)               //
	full := appendULEB([]byte{secCode}, uint64(len(sec)))
	full = append(full, sec...)

	// Drop the original code section (last section emitted) and append
	// the hostile one. Find it by scanning sections.
	r := &reader{buf: bin, pos: len(magicHeader)}
	out := append([]byte{}, bin[:len(magicHeader)]...)
	for !r.eof() {
		secStart := r.pos
		id, err := r.byte()
		if err != nil {
			t.Fatal(err)
		}
		size, err := r.uleb32()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.bytes(int(size)); err != nil {
			t.Fatal(err)
		}
		if id != secCode {
			out = append(out, bin[secStart:r.pos]...)
		}
	}
	out = append(out, full...)

	if _, err := Decode(out); err == nil {
		t.Fatal("decoder accepted a 4-billion-local function")
	}
}
