// Package ir is the lowered intermediate representation the execution
// engine runs: a one-time compilation pass (Lower) flattens each wasm
// function body into a dense instruction stream in which
//
//   - structured control flow (block/loop/if/else/end) is dissolved
//     into absolute-PC branches whose stack repair — the operand height
//     to keep and the values to carry — is precomputed, so execution
//     needs no control stack and no end/else re-scanning;
//   - immediates (constants, indices, memarg offsets, call signatures,
//     br_table targets) are decoded once at lower time;
//   - memory accesses are specialized to the instance configuration's
//     address-translation mode (wasm32 guard pages, wasm64 software
//     bounds checks with or without MTE tag checks, MTE sandboxing,
//     paper Figs. 12–13), eliminating per-access mode branching from
//     the hot path;
//   - per-function frame layouts are precomputed: FrameSize = params +
//     declared locals + the operand-stack high-water mark, with local
//     index i occupying frame-relative slot i, so the exec frame
//     machine can open every activation as one contiguous span of its
//     value arena — callee parameters materialize in place at the
//     caller's stack top — and never allocate on a guest→guest call.
//
// A Program is immutable after Lower and safe to share: the engine
// caches programs per (module content hash, Config) — exactly like
// compiled modules — so pooled instances of one module under one
// configuration all execute the same lowered stream and the lowering
// cost amortizes across millions of invocations.
//
// The package depends only on internal/wasm. Mapping a runtime
// configuration (core.Features, memory kind, demo flags) onto a Config
// is the exec layer's job, as is attaching the arch timing model: each
// lowered opcode has a fixed cost-event signature that the dispatch
// loop reports (interp.go's per-op hooks).
package ir
