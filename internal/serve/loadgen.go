package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Client is a minimal cage-serve API client, shared by cage-loadgen and
// the saturation benchmark.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Tenant is sent as X-Cage-Tenant (empty means the default tenant).
	Tenant string
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, strings.TrimSuffix(c.BaseURL, "/")+path, body)
	if err != nil {
		return err
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error.Code != "" {
			return fmt.Errorf("serve: %s %s: %d %s: %s", method, path, resp.StatusCode, eb.Error.Code, eb.Error.Message)
		}
		return fmt.Errorf("serve: %s %s: status %d", method, path, resp.StatusCode)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Upload registers a module (MiniC source or binary wasm image) and
// returns its content-hash id.
func (c *Client) Upload(body []byte) (string, error) {
	var resp UploadResponse
	if err := c.do(http.MethodPost, "/v1/modules", bytes.NewReader(body), &resp); err != nil {
		return "", err
	}
	return resp.Module, nil
}

// Invoke calls an exported function of a registered module.
func (c *Client) Invoke(req InvokeRequest) (*InvokeResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var resp InvokeResponse
	if err := c.do(http.MethodPost, "/v1/invoke", bytes.NewReader(body), &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches /v1/stats.
func (c *Client) Stats() (*Stats, error) {
	var s Stats
	if err := c.do(http.MethodGet, "/v1/stats", nil, &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadResult is one load-generation run at a fixed concurrency.
type LoadResult struct {
	Concurrency int
	Requests    int // attempted
	Errors      int // non-200 responses and transport failures
	Elapsed     time.Duration
	P50, P99    time.Duration
	// Throughput is successful requests per second of wall clock.
	Throughput float64
}

// RunLoad fires total invocations of one function at the given
// concurrency and reports latency percentiles and throughput.
// Individual request failures are counted, not fatal — saturation runs
// deliberately drive servers into 429/timeout territory.
func RunLoad(c *Client, req InvokeRequest, concurrency, total int) LoadResult {
	if concurrency < 1 {
		concurrency = 1
	}
	var (
		next      atomic.Int64
		errs      atomic.Int64
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, total)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]time.Duration, 0, total/concurrency+1)
			for next.Add(1) <= int64(total) {
				t0 := time.Now()
				_, err := c.Invoke(req)
				if err != nil {
					errs.Add(1)
					continue
				}
				local = append(local, time.Since(t0))
			}
			mu.Lock()
			latencies = append(latencies, local...)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := LoadResult{
		Concurrency: concurrency,
		Requests:    total,
		Errors:      int(errs.Load()),
		Elapsed:     elapsed,
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = percentile(latencies, 0.50)
		res.P99 = percentile(latencies, 0.99)
		res.Throughput = float64(len(latencies)) / elapsed.Seconds()
	}
	return res
}

// percentile reads the p'th percentile from sorted latencies
// (nearest-rank on the inclusive index).
func percentile(sorted []time.Duration, p float64) time.Duration {
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
