package cage

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cage/internal/core"
	"cage/internal/engine"
)

// Engine is the scalable front end to the toolchain and runtime: one
// process-wide compiled-module cache plus one recycled-instance pool
// per module, behind a concurrency-safe invocation API.
//
// Where Toolchain and Runtime pay compilation, validation, lowering,
// and whole-memory tagging (§7.2) on every CompileSource/Instantiate,
// an Engine pays them once per (source, Config) pair and then serves
// invocations from pooled instances that are reset — memory re-zeroed,
// MTE tags re-seeded, PAC modifier rotated — between checkouts; all
// instances of a module share one cached lowered program. Live
// instances are bounded by the §7.4 sandbox-tag budget: per-module
// invocation bursts queue instead of exhausting tags, when several
// modules compete for the budget spawning reclaims idle sibling
// instances, and when every tag is held by an in-flight invocation of
// another module the checkout queues until a tag is released or an
// instance is checked in — Invoke never surfaces
// core.ErrSandboxesExhausted under a plain budget.
// EnableExtendedSandboxes lifts the budget entirely.
//
//	eng := cage.NewEngine(cage.FullHardening())
//	mod, err := eng.CompileSource(src)
//	res, err := eng.Call(ctx, mod, "sum", []uint64{100}) // safe from many goroutines
type Engine struct {
	cfg Config
	tc  *Toolchain
	rt  *Runtime

	modules engine.Cache[*Module]
	pools   engine.PoolSet

	// Snapshot subsystem (snapshot.go): snapshots memoizes frozen
	// post-initialization images keyed by (module hash, config, init
	// spec); active maps each module to the image its pool currently
	// forks from — the automatic post-start baseline until an explicit
	// Engine.Snapshot replaces it. The map is immutable and republished
	// under snapMu on change, so the per-reset read (every pool checkin
	// forks from it) is a lock-free pointer load. autoSnapshotOff
	// disables the baseline capture (SetAutoSnapshot).
	snapshots       engine.SnapshotCache[*Snapshot]
	snapMu          sync.Mutex
	active          atomic.Pointer[map[*Module]*Snapshot]
	autoSnapshotOff atomic.Bool

	// idle broadcasts instance checkins to spawns queued on the shared
	// tag budget (a Release alone never fires for a tag that moved to a
	// sibling pool's idle list). The channel rides an atomic pointer so
	// the checkin hot path pays one load when nobody is queued, never a
	// mutex.
	idleCh atomic.Pointer[chan struct{}]
}

// NewEngine creates an engine for the configuration. The zero pool
// limit is derived from the configuration's sandbox-tag budget (15 for
// sandboxing alone, 1 when MTE also carries memory safety, unlimited
// without sandboxing, paper §6.4).
func NewEngine(cfg Config) *Engine {
	e := &Engine{cfg: cfg, tc: NewToolchain(cfg), rt: NewRuntime(cfg)}
	// The set is fresh — no pool exists yet, so the limit always takes.
	_ = e.pools.SetLimit(poolBudget(cfg))
	// All pools draw reset seeds from the runtime's instantiation
	// counter: every instance lifetime in the process — fresh or
	// recycled, any module — gets a unique PAC modifier (§6.3).
	e.pools.NextSeed = func() uint64 { return e.rt.seed.Add(1) }
	return e
}

// poolBudget maps a configuration to the per-module live-instance cap.
func poolBudget(cfg Config) int {
	pol := core.NewPolicy(cfg.features())
	if cfg.Sandboxing && pol.MaxSandboxes <= 1<<20 {
		return pol.MaxSandboxes
	}
	return 0 // not tag-limited
}

// Runtime exposes the engine's process-level runtime (PAC key, sandbox
// allocator, stdio routing).
func (e *Engine) Runtime() *Runtime { return e.rt }

// NewHostModule creates an embedder host module named name and
// registers it with the engine: every module instantiated by this
// engine can import its functions. Define functions with the typed
// adapters (HostFunc1, HostVoid2, ...) or the raw Func slot; a module
// named "env" extends the built-in env surface, which is where MiniC
// extern declarations resolve.
//
// Like the other configuration methods, it must be called before the
// engine's first Call/Invoke of any module; afterwards it fails with
// ErrEngineStarted (the host surface is frozen so resolved import
// tables can be shared by pooled instances).
func (e *Engine) NewHostModule(name string) (*HostModule, error) {
	return e.rt.NewHostModule(name)
}

// ErrEngineStarted is returned by configuration methods called after
// the engine has served its first invocation: pool parameters are fixed
// once the first pool exists, so late mutation would race with (and be
// silently ignored by) in-flight checkouts. The check shares the pool
// set's lock with pool creation, so a configuration call racing the
// first Call either takes effect or fails — never silently neither.
var ErrEngineStarted = errors.New("cage: engine already served an invocation; configure it before the first Call")

// EnableExtendedSandboxes lifts the 15-sandbox limit via §6.4 tag reuse
// and removes the pool cap it implies. It must be called before the
// first Call/Invoke of any module; afterwards it fails with
// ErrEngineStarted.
func (e *Engine) EnableExtendedSandboxes() error {
	if err := e.pools.SetLimit(0); err != nil {
		return ErrEngineStarted
	}
	e.rt.EnableExtendedSandboxes()
	return nil
}

// SetPoolLimit overrides the per-module live-instance cap (0 =
// unlimited). It must be called before the first Call/Invoke of any
// module; afterwards it fails with ErrEngineStarted (a pool built under
// the old cap would never observe the new one).
func (e *Engine) SetPoolLimit(n int) error {
	if err := e.pools.SetLimit(n); err != nil {
		return ErrEngineStarted
	}
	return nil
}

// cacheVariant encodes everything besides the source that influences
// compilation, so distinct configurations never share a cache entry.
func (c Config) cacheVariant() string {
	return fmt.Sprintf("w64=%t ms=%t sb=%t pa=%t sh=%t",
		c.Wasm64, c.MemorySafety, c.Sandboxing, c.PointerAuth, c.SpectreHarden)
}

// CompileSource compiles a MiniC translation unit, memoizing on the
// source hash and configuration: recompiling identical source is O(1),
// and concurrent first compilations collapse into one (singleflight).
func (e *Engine) CompileSource(src string) (*Module, error) {
	key := engine.KeyOfString(src, "minicc|"+e.cfg.cacheVariant())
	return e.modules.GetOrBuild(key, func() (*Module, error) {
		return e.tc.CompileSource(src)
	})
}

// DecodeModule parses and validates a binary module image, memoized on
// the image hash (decoding is configuration-independent).
func (e *Engine) DecodeModule(bin []byte) (*Module, error) {
	key := engine.KeyOf(bin, "decode")
	return e.modules.GetOrBuild(key, func() (*Module, error) {
		return DecodeModule(bin)
	})
}

// pooledInstance adapts a linked Instance (interpreter instance plus
// hardened allocator) to the pool's Resetter protocol. It carries the
// engine and module so a reset can fork from the module's currently
// registered snapshot — including one registered after this instance
// spawned (an Engine.Snapshot with an init function upgrades in-flight
// instances at their next checkin).
type pooledInstance struct {
	i   *Instance
	eng *Engine
	mod *Module
}

func (p *pooledInstance) Reset(seed uint64) error {
	// Fast path: fork from the registered snapshot — one restore helper
	// (Instance.restoreFrom) shared with snapshot-based spawning, so
	// the copy/COW image is the only initialization story.
	if !engine.FastPaths() {
		// Locked A/B mode prices the pre-elision restore: every checkin
		// pays the full clear+copy even if the call wrote nothing.
		p.i.inst.MarkMemoryDirty()
	}
	if s := p.eng.activeSnapshot(p.mod); s != nil {
		if err := p.i.restoreFrom(s, seed); err == nil {
			p.eng.snapshots.NoteRestore()
			return nil
		}
		// An image that cannot restore (e.g. its COW backing vanished)
		// falls through to the full replay below rather than poisoning
		// the pool.
	}
	// Full replay, same order as a fresh instantiation: restore state,
	// rewind the allocator, then run the start function — which may
	// itself allocate through the (now empty) heap.
	if err := p.i.inst.ResetState(seed); err != nil {
		return err
	}
	if p.i.alloc != nil {
		p.i.alloc.Reset()
	}
	return p.i.inst.RunStart()
}

func (p *pooledInstance) Close() error { return p.i.inst.Close() }

// checkin returns the instance to its module's pool and signals spawns
// queued on the tag budget. It allocates nothing: the pool lookup is a
// snapshot-map read and the no-waiter notify is one atomic load.
func (p *pooledInstance) checkin() {
	// The pool always exists here — this instance was checked out of it.
	pool, _ := p.eng.pools.Lookup(p.mod)
	pool.Put(p)
	p.eng.notifyIdle()
}

// notifyIdle wakes spawns queued on the tag budget after a checkin.
func (e *Engine) notifyIdle() {
	if e.idleCh.Load() == nil {
		return // nobody queued: the common case, one atomic load
	}
	if ch := e.idleCh.Swap(nil); ch != nil {
		close(*ch)
	}
}

// idleWait returns a channel closed at the next checkin.
func (e *Engine) idleWait() <-chan struct{} {
	for {
		if ch := e.idleCh.Load(); ch != nil {
			return *ch
		}
		ch := make(chan struct{})
		if e.idleCh.CompareAndSwap(nil, &ch) {
			return ch
		}
	}
}

// pool returns (creating on first use) the instance pool for m.
//
// The spawn path handles cross-module tag pressure: when pools of
// several modules compete for one §7.4 tag budget, another module's
// idle instances may pin every tag. Rather than failing, spawning
// reclaims one idle sibling instance (closing it frees its tag) and
// retries. When even that fails — every tag is held by an in-flight
// invocation — the spawn queues until the allocator releases a tag
// (the condition AcquireContext waits on) or any pool checks an
// instance in, then retries, so Engine.Call queues across modules on
// §7.4 exhaustion instead of surfacing core.ErrSandboxesExhausted.
// The queued wait honors the checkout's context, so a caller with a
// deadline abandons the queue cleanly without holding any tag.
func (e *Engine) pool(m *Module) *engine.Pool {
	// Steady state: the pool exists and Lookup finds it lock-free, so
	// the per-call cost is a map read — no mutex, no spawn-closure
	// allocation.
	if p, ok := e.pools.Lookup(m); ok {
		return p
	}
	return e.pools.For(m, func(ctx context.Context) (engine.Resetter, error) {
		for {
			var inst *Instance
			var err error
			if snap := e.activeSnapshot(m); snap != nil {
				// Fork the new instance straight from the registered
				// image: no data-segment replay, no whole-memory
				// tagging, no start/init execution.
				inst, err = e.rt.instantiate(m, snap)
				if err == nil {
					e.snapshots.NoteRestore()
				}
			} else {
				inst, err = e.rt.Instantiate(m)
				if err == nil && !e.autoSnapshotOff.Load() {
					// First spawn: freeze this pristine post-start state
					// as the image every later spawn and reset forks
					// from.
					e.captureBaseline(m, inst)
				}
			}
			if err == nil {
				return &pooledInstance{i: inst, eng: e, mod: m}, nil
			}
			if !errors.Is(err, core.ErrSandboxesExhausted) {
				return nil, err
			}
			if e.pools.ReclaimIdle(1) > 0 {
				continue
			}
			select {
			case <-e.rt.sandboxes.Released():
			case <-e.idleWait():
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	})
}

// Invoke calls an exported function on a pooled instance of m with no
// cancellation and no per-call bounds.
//
// Deprecated: use Call, which adds context cancellation, deadlines, and
// per-call fuel/stack/memory bounds. Invoke delegates to Call with a
// background context.
func (e *Engine) Invoke(m *Module, fn string, args ...uint64) ([]uint64, error) {
	res, err := e.Call(context.Background(), m, fn, args)
	if err != nil {
		return nil, err
	}
	return res.Values, nil
}

// InvokeF64 is Invoke for functions returning a double.
//
// Deprecated: use Call and Result.F64.
func (e *Engine) InvokeF64(m *Module, fn string, args ...uint64) (float64, error) {
	res, err := e.Call(context.Background(), m, fn, args)
	if err != nil {
		return 0, err
	}
	return res.F64(fn)
}

// WithInstance checks an instance of m out of the pool, runs f, and
// checks it back in (resetting it). Use it when an invocation needs
// more than Call offers — staging input in guest memory, reading
// results back, multiple calls against one live state. It is
// WithInstanceContext with a background context.
func (e *Engine) WithInstance(m *Module, f func(inst *Instance) error) error {
	return e.WithInstanceContext(context.Background(), m, f)
}

// WithInstanceContext is WithInstance under a context: a checkout
// queued on the live cap or on the §7.4 tag budget is abandoned with
// ctx (returning ctx.Err()), releasing nothing it did not own. The
// context only governs the checkout — pass it to Instance.Call as well
// to bound the invocation itself.
func (e *Engine) WithInstanceContext(ctx context.Context, m *Module, f func(inst *Instance) error) error {
	p := e.pool(m)
	r, err := p.GetContext(ctx)
	if err != nil {
		return err
	}
	pi := r.(*pooledInstance)
	defer pi.checkin()
	return f(pi.i)
}

// EngineStats aggregates the engine's cache and pool counters.
type EngineStats struct {
	Cache     engine.CacheStats
	Programs  engine.CacheStats
	Snapshots engine.SnapshotCacheStats
	Pools     engine.PoolStats
}

// Stats snapshots the module cache, the lowered-program cache, the
// snapshot cache, and the (summed) per-module pools.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		Cache:     e.modules.Stats(),
		Programs:  e.rt.ProgramCacheStats(),
		Snapshots: e.snapshots.Stats(),
		Pools:     e.pools.Stats(),
	}
}

// DispatchMode reports the runtime's execution tier; see
// Runtime.DispatchMode.
func (e *Engine) DispatchMode() (memory, fusion string) { return e.rt.DispatchMode() }

// PoolStatsFor snapshots the instance pool serving one module (zero
// stats before the module's first checkout). Engine.Stats sums every
// pool; a multi-module embedder (the serve daemon) uses this to report
// occupancy per module.
func (e *Engine) PoolStatsFor(m *Module) engine.PoolStats {
	stats, _ := e.pools.StatsFor(m)
	return stats
}

// Close retires every pooled instance, returning their sandbox tags.
// The engine must not be used afterwards.
func (e *Engine) Close() { e.pools.Close() }
