package exec

// Tests for the host-binding surface: the HostModule builder and typed
// adapters, the struct-keyed Linker and structured link errors, shared
// import-table snapshots, the HostContext (memory view, fuel,
// re-entrancy), and interruption of blocking host calls.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"cage/internal/ptrlayout"
	"cage/internal/wasm"
)

// hostCallModule builds a module importing env.f with the given type
// and exporting "go" (same type) that forwards its params to the host.
func hostCallModule(ft wasm.FuncType) *wasm.Module {
	m := &wasm.Module{}
	ti := m.AddType(ft)
	m.Imports = []wasm.Import{{Module: "env", Name: "f", TypeIdx: ti}}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	body := []wasm.Instr{}
	for i := range ft.Params {
		body = append(body, wasm.LocalGet(uint32(i)))
	}
	body = append(body, wasm.Call(0), wasm.End())
	m.Funcs = []wasm.Function{{TypeIdx: ti, Body: body}}
	m.Exports = []wasm.Export{{Name: "go", Kind: wasm.ExportFunc, Idx: 1}}
	return m
}

func TestLinkerStructKeyNoCollision(t *testing.T) {
	// Historically keys were module+"."+name, so ("a.b", "c") and
	// ("a", "b.c") collided. The struct key must keep them apart.
	l := NewLinker()
	mk := func(v uint64) HostFunc {
		return HostFunc{
			Type: wasm.FuncType{Results: []wasm.ValType{wasm.I64}},
			Fn: func(*HostContext, []uint64) ([]uint64, error) {
				return []uint64{v}, nil
			},
		}
	}
	l.Define("a.b", "c", mk(1))
	l.Define("a", "b.c", mk(2))
	f1, ok1 := l.Lookup("a.b", "c")
	f2, ok2 := l.Lookup("a", "b.c")
	if !ok1 || !ok2 {
		t.Fatal("lookup failed")
	}
	r1, _ := f1.Fn(nil, nil)
	r2, _ := f2.Fn(nil, nil)
	if r1[0] != 1 || r2[0] != 2 {
		t.Errorf("colliding keys resolved to %d, %d", r1[0], r2[0])
	}
}

func TestLinkErrorUnresolved(t *testing.T) {
	m := hostCallModule(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	_, err := NewInstance(m, Config{HostModules: []*HostModule{NewHostModule("other")}})
	if !errors.Is(err, ErrUnresolvedImport) {
		t.Fatalf("err = %v, want ErrUnresolvedImport", err)
	}
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err %T is not a *LinkError", err)
	}
	if le.Module != "env" || le.Name != "f" || len(le.Want.Params) != 1 {
		t.Errorf("LinkError detail = %+v", le)
	}
}

func TestLinkErrorTypeMismatch(t *testing.T) {
	m := hostCallModule(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	hm := NewHostModule("env")
	Func1(hm, "f", func(*HostContext, float64) (float64, error) { return 0, nil })
	_, err := NewInstance(m, Config{HostModules: []*HostModule{hm}})
	if !errors.Is(err, ErrImportTypeMismatch) {
		t.Fatalf("err = %v, want ErrImportTypeMismatch", err)
	}
	var le *LinkError
	if !errors.As(err, &le) {
		t.Fatalf("err %T is not a *LinkError", err)
	}
	if le.Module != "env" || le.Name != "f" {
		t.Errorf("LinkError names = %s.%s", le.Module, le.Name)
	}
	if le.Have.Params[0] != wasm.F64 || le.Want.Params[0] != wasm.I64 {
		t.Errorf("LinkError types: have %v want %v", le.Have, le.Want)
	}
}

func TestTypedAdapterSignatures(t *testing.T) {
	hm := NewHostModule("m")
	Func2(hm, "add", func(_ *HostContext, a, b int64) (int64, error) { return a + b, nil })
	Func1(hm, "sqrt", func(_ *HostContext, x float64) (float64, error) { return math.Sqrt(x), nil })
	Void1(hm, "log", func(_ *HostContext, _ Str) error { return nil })
	Func1(hm, "trunc", func(_ *HostContext, x uint32) (int32, error) { return int32(x), nil })
	want := map[string]wasm.FuncType{
		"add":   {Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}},
		"sqrt":  {Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.F64}},
		"log":   {Params: []wasm.ValType{wasm.I64, wasm.I64}}, // Str = (ptr, len)
		"trunc": {Params: []wasm.ValType{wasm.I32}, Results: []wasm.ValType{wasm.I32}},
	}
	for name, ft := range want {
		hf, ok := hm.Lookup(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		if !hf.Type.Equal(ft) {
			t.Errorf("%s lowered to %v, want %v", name, hf.Type, ft)
		}
	}

	hm32 := NewHostModule("m32").Ptr32()
	Void1(hm32, "log", func(_ *HostContext, _ Str) error { return nil })
	hf, _ := hm32.Lookup("log")
	if want := (wasm.FuncType{Params: []wasm.ValType{wasm.I32, wasm.I32}}); !hf.Type.Equal(want) {
		t.Errorf("ILP32 Str lowered to %v, want %v", hf.Type, want)
	}
}

func TestTypedAdapterMarshalling(t *testing.T) {
	m := hostCallModule(wasm.FuncType{Params: []wasm.ValType{wasm.I64, wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	hm := NewHostModule("env")
	Func2(hm, "f", func(_ *HostContext, a, b int64) (int64, error) { return a*10 + b, nil })
	inst, err := NewInstance(m, Config{HostModules: []*HostModule{hm}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := inst.Invoke("go", 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res[0] != 42 {
		t.Errorf("typed add = %d", res[0])
	}
}

func TestStrParamUntagsPointer(t *testing.T) {
	// A Str parameter must strip MTE tag bits before the memory read,
	// the way every guest access does.
	hm := NewHostModule("env")
	var got string
	Void1(hm, "f", func(_ *HostContext, s Str) error { got = string(s); return nil })
	m := &wasm.Module{}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	copy(inst.Memory()[64:], "hello")
	hf, _ := hm.Lookup("f")
	tagged := ptrlayout.WithTag(64, 7)
	if _, err := hf.Fn(inst.HostContext(nil), []uint64{tagged, 5}); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Errorf("Str param = %q", got)
	}
}

func TestMemoryViewBounds(t *testing.T) {
	m := &wasm.Module{}
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	inst, err := NewInstance(m, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mem := inst.HostContext(nil).Memory()
	if mem.Size() != wasm.PageSize {
		t.Fatalf("size = %d", mem.Size())
	}
	// In-bounds round trip.
	if err := mem.WriteU64(128, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	v, err := mem.ReadU64(128)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("round trip = %#x, %v", v, err)
	}
	// Overflow-safe: addr+n wraps uint64.
	if _, err := mem.ReadU64(math.MaxUint64 - 3); err == nil {
		t.Error("wrapping read not rejected")
	}
	if err := mem.WriteBytes(wasm.PageSize-4, make([]byte, 8)); err == nil {
		t.Error("straddling write not rejected")
	}
	if _, err := mem.ReadBytes(0, math.MaxUint64); err == nil {
		t.Error("oversized read not rejected")
	}
	// Accesses are charged to the timing model.
	before := inst.Counter().Total()
	_, _ = mem.ReadU32(0)
	_ = mem.WriteU32(0, 1)
	if inst.Counter().Total() != before+2 {
		t.Errorf("memory view accesses not charged (delta %d)", inst.Counter().Total()-before)
	}
}

func TestConsumeFuelDebitsMeterChain(t *testing.T) {
	m := hostCallModule(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	hm := NewHostModule("env")
	Func0(hm, "f", func(hc *HostContext) (int64, error) {
		if err := hc.ConsumeFuel(1_000_000); err != nil {
			return 0, err
		}
		return 1, nil
	})
	inst, err := NewInstance(m, Config{HostModules: []*HostModule{hm}})
	if err != nil {
		t.Fatal(err)
	}
	// Unmetered: the debit records events but nothing trips.
	if _, err := inst.InvokeWith(context.Background(), "go", nil, CallOptions{}); err != nil {
		t.Fatalf("unmetered: %v", err)
	}
	// Metered: the host-side debit exhausts the budget.
	_, err = inst.InvokeWith(context.Background(), "go", nil, CallOptions{Fuel: 1000})
	if !IsTrap(err, TrapFuelExhausted) {
		t.Fatalf("metered = %v, want TrapFuelExhausted", err)
	}
}

// reentrantModule exports "g" (calls the host) and "spin" (infinite
// loop) for host re-entrancy tests.
func reentrantModule() *wasm.Module {
	m := &wasm.Module{}
	tVoid := m.AddType(wasm.FuncType{})
	tI64 := m.AddType(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	m.Mems = []wasm.MemoryType{{Limits: wasm.Limits{Min: 1}, Memory64: true}}
	m.Imports = []wasm.Import{{Module: "env", Name: "reenter", TypeIdx: tVoid}}
	m.Funcs = []wasm.Function{
		{TypeIdx: tI64, Body: []wasm.Instr{wasm.Call(0), wasm.I64Const(0), wasm.End()}},
		{TypeIdx: tI64, Body: []wasm.Instr{
			wasm.Loop(wasm.BlockVoid), wasm.Br(0), wasm.End(),
			wasm.I64Const(0), wasm.End(),
		}},
	}
	m.Exports = []wasm.Export{
		{Name: "g", Kind: wasm.ExportFunc, Idx: 1},
		{Name: "spin", Kind: wasm.ExportFunc, Idx: 2},
	}
	return m
}

func TestHostReentrancyUnderFuelExhaustion(t *testing.T) {
	// The host re-enters the guest through HostContext.Call with an
	// unbounded inner call; the outer fuel budget must still stop the
	// inner spin via the meter chain.
	hm := NewHostModule("env")
	Void0(hm, "reenter", func(hc *HostContext) error {
		_, err := hc.Call(context.Background(), "spin", nil)
		return err
	})
	inst, err := NewInstance(reentrantModule(), Config{HostModules: []*HostModule{hm}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.InvokeWith(context.Background(), "g", nil, CallOptions{Fuel: 10_000})
	if !IsTrap(err, TrapFuelExhausted) {
		t.Fatalf("re-entrant spin under outer budget = %v, want TrapFuelExhausted", err)
	}
}

func TestHostReentrancyUnderCancellation(t *testing.T) {
	// Same shape, but the outer bound is a deadline: the inner spin
	// (entered with the host call's context via ctx=nil) must be
	// interrupted by the outer watcher.
	hm := NewHostModule("env")
	Void0(hm, "reenter", func(hc *HostContext) error {
		_, err := hc.Call(nil, "spin", nil)
		return err
	})
	inst, err := NewInstance(reentrantModule(), Config{HostModules: []*HostModule{hm}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = inst.InvokeWith(ctx, "g", nil, CallOptions{})
	if !IsTrap(err, TrapInterrupted) {
		t.Fatalf("re-entrant spin under deadline = %v, want TrapInterrupted", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("trap does not wrap the context error: %v", err)
	}
}

func TestBlockingHostCallInterrupted(t *testing.T) {
	// A host function that blocks on its context must be interruptible:
	// when the deadline fires, returning ctx.Err() becomes
	// TrapInterrupted, not a generic host trap.
	m := hostCallModule(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	hm := NewHostModule("env")
	Func0(hm, "f", func(hc *HostContext) (int64, error) {
		<-hc.Context().Done() // a blocking syscall standing in
		return 0, hc.Context().Err()
	})
	inst, err := NewInstance(m, Config{HostModules: []*HostModule{hm}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = inst.InvokeWith(ctx, "go", nil, CallOptions{})
	if !IsTrap(err, TrapInterrupted) {
		t.Fatalf("blocking host call = %v, want TrapInterrupted", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("interruption took %v", elapsed)
	}
}

func TestCancellationDuringHostCallPostCheck(t *testing.T) {
	// Even a host function that returns success after the deadline
	// fired must not let guest execution continue: the post-host meter
	// check traps.
	m := hostCallModule(wasm.FuncType{Results: []wasm.ValType{wasm.I64}})
	hm := NewHostModule("env")
	Func0(hm, "f", func(hc *HostContext) (int64, error) {
		<-hc.Context().Done()
		return 7, nil // swallows the cancellation
	})
	inst, err := NewInstance(m, Config{HostModules: []*HostModule{hm}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err = inst.InvokeWith(ctx, "go", nil, CallOptions{})
	if !IsTrap(err, TrapInterrupted) {
		t.Fatalf("post-host check = %v, want TrapInterrupted", err)
	}
}

func TestImportTableSharedAcrossInstances(t *testing.T) {
	m := hostCallModule(wasm.FuncType{Params: []wasm.ValType{wasm.I64}, Results: []wasm.ValType{wasm.I64}})
	hm := NewHostModule("env")
	calls := 0
	Func1(hm, "f", func(_ *HostContext, v int64) (int64, error) { calls++; return v + 1, nil })
	table, err := ResolveImports(m, hm)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		inst, err := NewInstance(m, Config{Imports: table})
		if err != nil {
			t.Fatal(err)
		}
		if res, err := inst.Invoke("go", uint64(i)); err != nil || res[0] != uint64(i)+1 {
			t.Fatalf("instance %d: %v %v", i, res, err)
		}
	}
	if calls != 3 {
		t.Errorf("host calls = %d", calls)
	}
	// A snapshot for a different module is rejected.
	other := hostCallModule(wasm.FuncType{Params: []wasm.ValType{wasm.F64}, Results: []wasm.ValType{wasm.F64}})
	if _, err := NewInstance(other, Config{Imports: table}); err == nil {
		t.Error("mismatched import table accepted")
	}
}

func TestHostModuleFreeze(t *testing.T) {
	hm := NewHostModule("env")
	Func0(hm, "f", func(*HostContext) (int64, error) { return 0, nil })
	if _, err := ResolveImports(&wasm.Module{}, hm); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("defining on a frozen module did not panic")
		}
	}()
	Func0(hm, "late", func(*HostContext) (int64, error) { return 0, nil })
}

func TestDuplicateHostFunctionAcrossModules(t *testing.T) {
	a := NewHostModule("env")
	Func0(a, "f", func(*HostContext) (int64, error) { return 1, nil })
	b := NewHostModule("env")
	Func0(b, "f", func(*HostContext) (int64, error) { return 2, nil })
	if _, err := ResolveImports(&wasm.Module{}, a, b); err == nil {
		t.Error("duplicate env.f across modules not rejected")
	}
}
