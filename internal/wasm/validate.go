package wasm

import "fmt"

// Module validation: the standard WebAssembly operand-stack typing
// algorithm, extended with the Cage typing rules of paper Fig. 10:
//
//	C.memory = n ⊢ segment.new o     : i64 i64 -> i64
//	C.memory = n ⊢ segment.set_tag o : i64 i64 i64 -> ε
//	C.memory = n ⊢ segment.free o    : i64 i64 -> ε
//	C ⊢ i64.pointer_sign             : i64 -> i64
//	C ⊢ i64.pointer_auth             : i64 -> i64
//
// The segment rules additionally require the memory to be 64-bit, since
// Cage builds on wasm64 (paper §4.2).

// unknownType is the bottom type used for unreachable-code polymorphism.
const unknownType ValType = 0

type simpleSig struct {
	pop  []ValType
	push []ValType
}

var simpleSigs map[Opcode]simpleSig

func init() {
	simpleSigs = make(map[Opcode]simpleSig)
	bin := func(op Opcode, t ValType) { simpleSigs[op] = simpleSig{[]ValType{t, t}, []ValType{t}} }
	rel := func(op Opcode, t ValType) { simpleSigs[op] = simpleSig{[]ValType{t, t}, []ValType{I32}} }
	un := func(op Opcode, t ValType) { simpleSigs[op] = simpleSig{[]ValType{t}, []ValType{t}} }
	cvt := func(op Opcode, from, to ValType) { simpleSigs[op] = simpleSig{[]ValType{from}, []ValType{to}} }

	for op := OpI32Add; op <= OpI32Rotr; op++ {
		bin(op, I32)
	}
	for op := OpI64Add; op <= OpI64Rotr; op++ {
		bin(op, I64)
	}
	for op := OpF32Add; op <= OpF32Copysign; op++ {
		bin(op, F32)
	}
	for op := OpF64Add; op <= OpF64Copysign; op++ {
		bin(op, F64)
	}
	for op := OpI32Eq; op <= OpI32GeU; op++ {
		rel(op, I32)
	}
	for op := OpI64Eq; op <= OpI64GeU; op++ {
		rel(op, I64)
	}
	for op := OpF32Eq; op <= OpF32Ge; op++ {
		rel(op, F32)
	}
	for op := OpF64Eq; op <= OpF64Ge; op++ {
		rel(op, F64)
	}
	simpleSigs[OpI32Eqz] = simpleSig{[]ValType{I32}, []ValType{I32}}
	simpleSigs[OpI64Eqz] = simpleSig{[]ValType{I64}, []ValType{I32}}
	for _, op := range []Opcode{OpI32Clz, OpI32Ctz, OpI32Popcnt} {
		un(op, I32)
	}
	for _, op := range []Opcode{OpI64Clz, OpI64Ctz, OpI64Popcnt} {
		un(op, I64)
	}
	for op := OpF32Abs; op <= OpF32Sqrt; op++ {
		un(op, F32)
	}
	for op := OpF64Abs; op <= OpF64Sqrt; op++ {
		un(op, F64)
	}
	cvt(OpI32WrapI64, I64, I32)
	cvt(OpI32TruncF32S, F32, I32)
	cvt(OpI32TruncF32U, F32, I32)
	cvt(OpI32TruncF64S, F64, I32)
	cvt(OpI32TruncF64U, F64, I32)
	cvt(OpI64ExtendI32S, I32, I64)
	cvt(OpI64ExtendI32U, I32, I64)
	cvt(OpI64TruncF32S, F32, I64)
	cvt(OpI64TruncF32U, F32, I64)
	cvt(OpI64TruncF64S, F64, I64)
	cvt(OpI64TruncF64U, F64, I64)
	cvt(OpF32ConvertI32S, I32, F32)
	cvt(OpF32ConvertI32U, I32, F32)
	cvt(OpF32ConvertI64S, I64, F32)
	cvt(OpF32ConvertI64U, I64, F32)
	cvt(OpF32DemoteF64, F64, F32)
	cvt(OpF64ConvertI32S, I32, F64)
	cvt(OpF64ConvertI32U, I32, F64)
	cvt(OpF64ConvertI64S, I64, F64)
	cvt(OpF64ConvertI64U, I64, F64)
	cvt(OpF64PromoteF32, F32, F64)
	cvt(OpI32ReinterpretF32, F32, I32)
	cvt(OpI64ReinterpretF64, F64, I64)
	cvt(OpF32ReinterpretI32, I32, F32)
	cvt(OpF64ReinterpretI64, I64, F64)
	// Cage pointer-authentication instructions (Fig. 10).
	simpleSigs[OpPointerSign] = simpleSig{[]ValType{I64}, []ValType{I64}}
	simpleSigs[OpPointerAuth] = simpleSig{[]ValType{I64}, []ValType{I64}}
}

// ValidationError describes why a module failed validation.
type ValidationError struct {
	Func int // -1 for module-level errors
	PC   int
	Msg  string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	if e.Func < 0 {
		return "wasm: validate: " + e.Msg
	}
	return fmt.Sprintf("wasm: validate: func %d, pc %d: %s", e.Func, e.PC, e.Msg)
}

// Validate type-checks the whole module.
func Validate(m *Module) error {
	modErr := func(format string, args ...any) error {
		return &ValidationError{Func: -1, Msg: fmt.Sprintf(format, args...)}
	}
	for i, im := range m.Imports {
		if int(im.TypeIdx) >= len(m.Types) {
			return modErr("import %d: type index %d out of range", i, im.TypeIdx)
		}
	}
	for i, f := range m.Funcs {
		if int(f.TypeIdx) >= len(m.Types) {
			return modErr("function %d: type index %d out of range", i, f.TypeIdx)
		}
	}
	if len(m.Mems) > 1 {
		return modErr("at most one memory is supported")
	}
	if len(m.Tables) > 1 {
		return modErr("at most one table is supported")
	}
	numFuncs := len(m.Imports) + len(m.Funcs)
	for i, e := range m.Exports {
		switch e.Kind {
		case ExportFunc:
			if int(e.Idx) >= numFuncs {
				return modErr("export %q: function index %d out of range", e.Name, e.Idx)
			}
		case ExportMemory:
			if int(e.Idx) >= len(m.Mems) {
				return modErr("export %q: memory index out of range", e.Name)
			}
		case ExportTable:
			if int(e.Idx) >= len(m.Tables) {
				return modErr("export %q: table index out of range", e.Name)
			}
		case ExportGlobal:
			if int(e.Idx) >= len(m.Globals) {
				return modErr("export %q: global index out of range", e.Name)
			}
		default:
			return modErr("export %q: unknown kind %d", e.Name, e.Kind)
		}
		_ = i
	}
	for i, es := range m.Elems {
		if len(m.Tables) == 0 {
			return modErr("element segment %d without a table", i)
		}
		for _, fidx := range es.Funcs {
			if int(fidx) >= numFuncs {
				return modErr("element segment %d: function index %d out of range", i, fidx)
			}
		}
	}
	if len(m.Datas) > 0 && len(m.Mems) == 0 {
		return modErr("data segment without a memory")
	}
	if m.Start != nil {
		ft, err := m.FuncTypeAt(*m.Start)
		if err != nil {
			return modErr("start: %v", err)
		}
		if len(ft.Params) != 0 || len(ft.Results) != 0 {
			return modErr("start function must have type () -> ()")
		}
	}
	for i := range m.Funcs {
		if err := validateFunc(m, i); err != nil {
			return err
		}
	}
	return nil
}

type ctrlFrame struct {
	op          Opcode // OpBlock, OpLoop, OpIf, or OpEnd for the function frame
	results     []ValType
	height      int
	unreachable bool
	sawElse     bool
}

type funcValidator struct {
	m       *Module
	fidx    int
	pc      int
	locals  []ValType
	stack   []ValType
	ctrls   []ctrlFrame
	hasMem  bool
	mem64   bool
	addrTy  ValType
	results []ValType
}

func (v *funcValidator) errf(format string, args ...any) error {
	return &ValidationError{Func: v.fidx, PC: v.pc, Msg: fmt.Sprintf(format, args...)}
}

func (v *funcValidator) push(t ValType) { v.stack = append(v.stack, t) }

func (v *funcValidator) pop(want ValType) (ValType, error) {
	frame := &v.ctrls[len(v.ctrls)-1]
	if len(v.stack) == frame.height {
		if frame.unreachable {
			return want, nil
		}
		return 0, v.errf("operand stack underflow, expected %v", want)
	}
	t := v.stack[len(v.stack)-1]
	v.stack = v.stack[:len(v.stack)-1]
	if want != unknownType && t != unknownType && t != want {
		return 0, v.errf("type mismatch: expected %v, found %v", want, t)
	}
	if t == unknownType {
		return want, nil
	}
	return t, nil
}

func (v *funcValidator) pushCtrl(op Opcode, results []ValType) {
	v.ctrls = append(v.ctrls, ctrlFrame{op: op, results: results, height: len(v.stack)})
}

func (v *funcValidator) popCtrl() (ctrlFrame, error) {
	if len(v.ctrls) == 0 {
		return ctrlFrame{}, v.errf("unbalanced end")
	}
	frame := v.ctrls[len(v.ctrls)-1]
	for i := len(frame.results) - 1; i >= 0; i-- {
		if _, err := v.pop(frame.results[i]); err != nil {
			return ctrlFrame{}, err
		}
	}
	if len(v.stack) != frame.height && !frame.unreachable {
		return ctrlFrame{}, v.errf("%d leftover operands at block end", len(v.stack)-frame.height)
	}
	v.stack = v.stack[:frame.height]
	v.ctrls = v.ctrls[:len(v.ctrls)-1]
	return frame, nil
}

// labelTypes returns the types a branch to the frame must supply: a
// loop's params (none in our subset) or a block/if's results.
func (f *ctrlFrame) labelTypes() []ValType {
	if f.op == OpLoop {
		return nil
	}
	return f.results
}

func (v *funcValidator) markUnreachable() {
	frame := &v.ctrls[len(v.ctrls)-1]
	v.stack = v.stack[:frame.height]
	frame.unreachable = true
}

func (v *funcValidator) branchTo(depth uint64) error {
	if depth >= uint64(len(v.ctrls)) {
		return v.errf("branch depth %d exceeds nesting %d", depth, len(v.ctrls))
	}
	frame := &v.ctrls[len(v.ctrls)-1-int(depth)]
	types := frame.labelTypes()
	for i := len(types) - 1; i >= 0; i-- {
		if _, err := v.pop(types[i]); err != nil {
			return err
		}
	}
	for _, t := range types {
		v.push(t)
	}
	return nil
}

func blockResults(bt BlockType) ([]ValType, error) {
	if bt == BlockVoid {
		return nil, nil
	}
	if t, ok := bt.Result(); ok {
		return []ValType{t}, nil
	}
	return nil, fmt.Errorf("unsupported block type %d", bt)
}

func validateFunc(m *Module, idx int) error {
	f := &m.Funcs[idx]
	ft := m.Types[f.TypeIdx]
	v := &funcValidator{m: m, fidx: idx, results: ft.Results}
	v.locals = append(append([]ValType{}, ft.Params...), f.Locals...)
	for _, l := range v.locals {
		if !l.Valid() {
			return v.errf("invalid local type %v", l)
		}
	}
	if len(m.Mems) > 0 {
		v.hasMem = true
		v.mem64 = m.Mems[0].Memory64
	}
	v.addrTy = I32
	if v.mem64 {
		v.addrTy = I64
	}
	v.pushCtrl(OpEnd, ft.Results)

	body := f.Body
	if len(body) == 0 || body[len(body)-1].Op != OpEnd {
		return v.errf("function body not terminated by end")
	}
	for pc, in := range body {
		v.pc = pc
		if err := v.step(in); err != nil {
			return err
		}
		if len(v.ctrls) == 0 && pc != len(body)-1 {
			return v.errf("instructions after function end")
		}
	}
	if len(v.ctrls) != 0 {
		return v.errf("unclosed blocks at end of function")
	}
	return nil
}

func (v *funcValidator) step(in Instr) error {
	op := in.Op
	if sig, ok := simpleSigs[op]; ok {
		for i := len(sig.pop) - 1; i >= 0; i-- {
			if _, err := v.pop(sig.pop[i]); err != nil {
				return err
			}
		}
		for _, t := range sig.push {
			v.push(t)
		}
		return nil
	}
	switch op {
	case OpUnreachable:
		v.markUnreachable()
	case OpNop:
	case OpBlock, OpLoop:
		results, err := blockResults(in.Block)
		if err != nil {
			return v.errf("%v", err)
		}
		v.pushCtrl(op, results)
	case OpIf:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		results, err := blockResults(in.Block)
		if err != nil {
			return v.errf("%v", err)
		}
		v.pushCtrl(op, results)
	case OpElse:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.op != OpIf {
			return v.errf("else without matching if")
		}
		v.pushCtrl(OpIf, frame.results)
		v.ctrls[len(v.ctrls)-1].sawElse = true
	case OpEnd:
		frame, err := v.popCtrl()
		if err != nil {
			return err
		}
		if frame.op == OpIf && !frame.sawElse && len(frame.results) > 0 {
			return v.errf("if with results requires an else branch")
		}
		if len(v.ctrls) == 0 {
			// Function frame: results were checked by popCtrl.
			for _, t := range frame.results {
				v.push(t)
			}
		} else {
			for _, t := range frame.results {
				v.push(t)
			}
		}
	case OpBr:
		if err := v.branchTo(in.X); err != nil {
			return err
		}
		v.markUnreachable()
	case OpBrIf:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		if err := v.branchTo(in.X); err != nil {
			return err
		}
	case OpBrTable:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		for _, t := range in.Targets {
			if uint64(t) >= uint64(len(v.ctrls)) {
				return v.errf("br_table target %d exceeds nesting", t)
			}
		}
		if err := v.branchTo(in.X); err != nil {
			return err
		}
		v.markUnreachable()
	case OpReturn:
		for i := len(v.results) - 1; i >= 0; i-- {
			if _, err := v.pop(v.results[i]); err != nil {
				return err
			}
		}
		v.markUnreachable()
	case OpCall:
		ft, err := v.m.FuncTypeAt(uint32(in.X))
		if err != nil {
			return v.errf("%v", err)
		}
		for i := len(ft.Params) - 1; i >= 0; i-- {
			if _, err := v.pop(ft.Params[i]); err != nil {
				return err
			}
		}
		for _, t := range ft.Results {
			v.push(t)
		}
	case OpCallIndirect:
		if len(v.m.Tables) == 0 {
			return v.errf("call_indirect without a table")
		}
		if int(in.X) >= len(v.m.Types) {
			return v.errf("call_indirect type index %d out of range", in.X)
		}
		if _, err := v.pop(I32); err != nil { // table index stays 32-bit
			return err
		}
		ft := v.m.Types[in.X]
		for i := len(ft.Params) - 1; i >= 0; i-- {
			if _, err := v.pop(ft.Params[i]); err != nil {
				return err
			}
		}
		for _, t := range ft.Results {
			v.push(t)
		}
	case OpDrop:
		if _, err := v.pop(unknownType); err != nil {
			return err
		}
	case OpSelect:
		if _, err := v.pop(I32); err != nil {
			return err
		}
		t1, err := v.pop(unknownType)
		if err != nil {
			return err
		}
		t2, err := v.pop(t1)
		if err != nil {
			return err
		}
		if t2 == unknownType {
			t2 = t1
		}
		v.push(t2)
	case OpLocalGet, OpLocalSet, OpLocalTee:
		if in.X >= uint64(len(v.locals)) {
			return v.errf("local index %d out of range (%d locals)", in.X, len(v.locals))
		}
		t := v.locals[in.X]
		switch op {
		case OpLocalGet:
			v.push(t)
		case OpLocalSet:
			if _, err := v.pop(t); err != nil {
				return err
			}
		case OpLocalTee:
			if _, err := v.pop(t); err != nil {
				return err
			}
			v.push(t)
		}
	case OpGlobalGet, OpGlobalSet:
		if in.X >= uint64(len(v.m.Globals)) {
			return v.errf("global index %d out of range", in.X)
		}
		g := v.m.Globals[in.X]
		if op == OpGlobalGet {
			v.push(g.Type.Type)
		} else {
			if !g.Type.Mutable {
				return v.errf("global.set on immutable global %d", in.X)
			}
			if _, err := v.pop(g.Type.Type); err != nil {
				return err
			}
		}
	case OpI32Const:
		v.push(I32)
	case OpI64Const:
		v.push(I64)
	case OpF32Const:
		v.push(F32)
	case OpF64Const:
		v.push(F64)
	case OpMemorySize:
		if !v.hasMem {
			return v.errf("memory.size without a memory")
		}
		v.push(v.addrTy)
	case OpMemoryGrow:
		if !v.hasMem {
			return v.errf("memory.grow without a memory")
		}
		if _, err := v.pop(v.addrTy); err != nil {
			return err
		}
		v.push(v.addrTy)
	case OpMemoryFill:
		if !v.hasMem {
			return v.errf("memory.fill without a memory")
		}
		if _, err := v.pop(v.addrTy); err != nil {
			return err
		}
		if _, err := v.pop(I32); err != nil {
			return err
		}
		if _, err := v.pop(v.addrTy); err != nil {
			return err
		}
	case OpMemoryCopy:
		if !v.hasMem {
			return v.errf("memory.copy without a memory")
		}
		for i := 0; i < 3; i++ {
			if _, err := v.pop(v.addrTy); err != nil {
				return err
			}
		}
	case OpSegmentNew, OpSegmentSetTag, OpSegmentFree:
		// Paper Fig. 10: valid only under a context with a memory; the
		// operands are i64, so the memory must be 64-bit.
		if !v.hasMem {
			return v.errf("%v requires a declared memory (C.memory = n)", op)
		}
		if !v.mem64 {
			return v.errf("%v requires a 64-bit memory (wasm64)", op)
		}
		switch op {
		case OpSegmentNew:
			if _, err := v.pop(I64); err != nil { // length
				return err
			}
			if _, err := v.pop(I64); err != nil { // pointer
				return err
			}
			v.push(I64)
		case OpSegmentSetTag:
			for i := 0; i < 3; i++ { // length, tagged pointer, pointer
				if _, err := v.pop(I64); err != nil {
					return err
				}
			}
		case OpSegmentFree:
			for i := 0; i < 2; i++ { // length, tagged pointer
				if _, err := v.pop(I64); err != nil {
					return err
				}
			}
		}
	default:
		if op.isMemAccess() {
			return v.stepMemAccess(in)
		}
		return v.errf("unsupported opcode %v", op)
	}
	return nil
}

func (v *funcValidator) stepMemAccess(in Instr) error {
	op := in.Op
	if !v.hasMem {
		return v.errf("%v without a memory", op)
	}
	sz := op.AccessSize()
	if in.X > 63 || uint64(1)<<in.X > sz {
		return v.errf("%v: alignment 2^%d exceeds access size %d", op, in.X, sz)
	}
	var valTy ValType
	switch {
	case op >= OpI32Load && op <= OpI64Load32U:
		switch op {
		case OpI32Load, OpI32Load8S, OpI32Load8U, OpI32Load16S, OpI32Load16U:
			valTy = I32
		case OpF32Load:
			valTy = F32
		case OpF64Load:
			valTy = F64
		default:
			valTy = I64
		}
		if _, err := v.pop(v.addrTy); err != nil {
			return err
		}
		v.push(valTy)
	default: // stores
		switch op {
		case OpI32Store, OpI32Store8, OpI32Store16:
			valTy = I32
		case OpF32Store:
			valTy = F32
		case OpF64Store:
			valTy = F64
		default:
			valTy = I64
		}
		if _, err := v.pop(valTy); err != nil {
			return err
		}
		if _, err := v.pop(v.addrTy); err != nil {
			return err
		}
	}
	return nil
}
