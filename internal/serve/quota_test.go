package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"cage"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestTenantTimeoutFreesInstanceAndTag is the §7.4 denial-of-service
// regression: under full hardening the process owns ONE sandbox tag, so
// a guest `for(;;);` that outlived its quota would wedge the whole
// service. The tenant timeout must interrupt it (408), the trapped
// instance must be reset and recycled — not discarded — and the next
// request must get the tag promptly.
func TestTenantTimeoutFreesInstanceAndTag(t *testing.T) {
	ts, srv := newTestServer(t, Options{
		Config:       cage.FullHardening(),
		ConfigName:   "full",
		DefaultQuota: QuotaPolicy{Timeout: 150 * time.Millisecond},
	})
	up := uploadSource(t, ts, "", guestSource)

	resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}})
	if resp.StatusCode != http.StatusRequestTimeout || eb.Error.Code != "timeout" {
		t.Fatalf("spin: got (%d, %q), want (408, timeout)", resp.StatusCode, eb.Error.Code)
	}
	if eb.Error.Trap != "call interrupted" {
		t.Errorf("trap = %q, want %q", eb.Error.Trap, "call interrupted")
	}

	// The tag is free again: a well-behaved call on the same (only)
	// instance must succeed, fast.
	start := time.Now()
	r2, res, _ := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{40, 2}})
	if r2.StatusCode != http.StatusOK || res.Values[0] != 42 {
		t.Fatalf("add after interrupted spin: status %d values %v", r2.StatusCode, res.Values)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("add took %v — the interrupted instance pinned the tag", d)
	}

	stats := srv.StatsSnapshot()
	tn := stats.Tenants[DefaultTenant]
	if tn.Interrupted != 1 || tn.OK != 1 {
		t.Errorf("tenant counters %+v, want interrupted=1 ok=1", tn.CounterStats)
	}
	pool := stats.Modules[up.Module].Pool
	if pool.Spawned != 1 {
		t.Errorf("pool spawned %d instances, want 1 (the interrupted one must be reused)", pool.Spawned)
	}
	if pool.Recycled < 2 {
		t.Errorf("pool recycled %d times, want ≥2 (interrupted call's checkin included)", pool.Recycled)
	}
	if pool.Live > 1 {
		t.Errorf("pool live=%d exceeds the single-tag budget", pool.Live)
	}
}

// TestQueueFull429 pins bounded admission: MaxConcurrent=1, MaxQueue=1,
// so the third simultaneous request is shed immediately with 429 and a
// Retry-After hint instead of growing the queue.
func TestQueueFull429(t *testing.T) {
	ts, srv := newTestServer(t, Options{
		Config:     cage.SandboxingOnly(),
		ConfigName: "sandbox",
		Tenants: map[string]QuotaPolicy{
			"q": {
				Timeout:       2 * time.Second,
				MaxConcurrent: 1,
				MaxQueue:      1,
				RetryAfter:    2 * time.Second,
			},
		},
	})
	up := uploadSource(t, ts, "q", guestSource)
	client := &Client{BaseURL: ts.URL, Tenant: "q"}
	spin := InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}}

	// A occupies the single slot; B fills the queue.
	done := make(chan struct{}, 2)
	go func() { client.Invoke(spin); done <- struct{}{} }()
	waitFor(t, "A in flight", func() bool {
		return srv.StatsSnapshot().Tenants["q"].Active == 1
	})
	go func() { client.Invoke(spin); done <- struct{}{} }()
	waitFor(t, "B queued", func() bool {
		return srv.StatsSnapshot().Tenants["q"].QueueDepth == 1
	})

	// C finds slot and queue full: 429, Retry-After, structured body.
	resp, _, eb := invoke(t, ts, "q", spin)
	if resp.StatusCode != http.StatusTooManyRequests || eb.Error.Code != "queue_full" {
		t.Fatalf("got (%d, %q), want (429, queue_full)", resp.StatusCode, eb.Error.Code)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if eb.Error.RetryAfterMs != 2000 {
		t.Errorf("retry_after_ms = %d, want 2000", eb.Error.RetryAfterMs)
	}

	<-done
	<-done // A and B run out their 2s quota (408s); drain before close
	if got := srv.StatsSnapshot().Tenants["q"].Rejected; got != 1 {
		t.Errorf("rejected=%d, want 1", got)
	}
}

// TestClientDisconnectAbandonsQueuedCheckout pins Pool.GetContext under
// server load: full hardening again means ONE instance; while tenant a
// holds it, tenant b's request queues inside the engine pool. When b's
// client disconnects, the queued checkout must be abandoned immediately
// — no instance spawned for it, no slot held — and a later request must
// still get the instance.
func TestClientDisconnectAbandonsQueuedCheckout(t *testing.T) {
	ts, srv := newTestServer(t, Options{
		Config:       cage.FullHardening(),
		ConfigName:   "full",
		DefaultQuota: QuotaPolicy{Timeout: 1500 * time.Millisecond},
	})
	up := uploadSource(t, ts, "a", guestSource)

	// a: a spin holding the only instance until its quota interrupt.
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		(&Client{BaseURL: ts.URL, Tenant: "a"}).Invoke(InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}})
	}()
	waitFor(t, "a holding the instance", func() bool {
		return srv.StatsSnapshot().Tenants["a"].Active == 1
	})

	// b: queued on the pool (no admission cap here — the engine's
	// checkout queue is what b waits in), then disconnects.
	body, _ := json.Marshal(InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{1, 2}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/invoke", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "b")
	bDone := make(chan error, 1)
	go func() {
		_, err := http.DefaultClient.Do(req) //nolint:bodyclose — the request is cancelled
		bDone <- err
	}()
	waitFor(t, "b queued on the pool", func() bool {
		return srv.StatsSnapshot().Tenants["b"].Active == 1
	})

	cancel()
	if err := <-bDone; err == nil {
		t.Fatal("b's request succeeded despite cancellation")
	}
	// The abandoned checkout unwinds while a still runs: b leaves the
	// engine queue without waiting for the instance.
	waitFor(t, "b abandoned", func() bool {
		bs := srv.StatsSnapshot().Tenants["b"]
		return bs.Active == 0 && bs.Canceled == 1
	})
	if a := srv.StatsSnapshot().Tenants["a"]; a.Active != 1 {
		t.Fatalf("a no longer in flight (active=%d) — test lost its timing window", a.Active)
	}

	// c gets the instance once a's quota fires; b's abandoned checkout
	// must not have consumed it or spawned a second one.
	<-aDone
	resp, res, _ := invoke(t, ts, "c", InvokeRequest{Module: up.Module, Function: "add", Args: []uint64{20, 22}})
	if resp.StatusCode != http.StatusOK || res.Values[0] != 42 {
		t.Fatalf("c's add: status %d values %v", resp.StatusCode, res.Values)
	}
	if spawned := srv.StatsSnapshot().Modules[up.Module].Pool.Spawned; spawned != 1 {
		t.Errorf("pool spawned %d instances, want 1 — the abandoned checkout leaked a spawn", spawned)
	}
}

// TestModuleQuotaNotBypassable is the admission-control regression for
// MaxModules: a rejected upload must leave nothing behind — no registry
// entry, no invokable module — so re-uploading the same bytes is
// rejected again instead of riding a cached hit around the quota, and a
// hostile tenant cannot grow registry or engine-cache memory with
// uploads it is not entitled to.
func TestModuleQuotaNotBypassable(t *testing.T) {
	ts, srv := newTestServer(t, Options{
		Config:     cage.Baseline64(),
		ConfigName: "baseline64",
		Tenants: map[string]QuotaPolicy{
			"capped": {MaxModules: 1},
		},
	})
	second := `long other(long n) { return n - 1; }`

	up := uploadSource(t, ts, "capped", guestSource)

	// The second distinct module is over quota — and stays over quota on
	// every retry. Before the fix the first attempt registered the entry
	// and the second returned 200 cached, free of charge.
	for attempt := 0; attempt < 2; attempt++ {
		var eb errorBody
		resp := postJSON(t, ts, "/v1/modules", "capped", []byte(second), &eb)
		if resp.StatusCode != http.StatusForbidden || eb.Error.Code != "module_quota_exceeded" {
			t.Fatalf("attempt %d: got (%d, %q), want (403, module_quota_exceeded)", attempt, resp.StatusCode, eb.Error.Code)
		}
	}

	// The rejected module consumed nothing: one registry entry, and its
	// functions are not invokable under any tenant.
	if entries := srv.reg.list(); len(entries) != 1 {
		t.Fatalf("registry holds %d entries after rejections, want 1", len(entries))
	}
	mods := srv.Engine().Stats().Cache
	if mods.Entries > 2 { // guestSource + at most the rejected body's one-time compile
		t.Errorf("engine module cache holds %d entries — rejected uploads are being cached", mods.Entries)
	}

	// Re-uploading content the tenant owns stays free.
	again := uploadSource(t, ts, "capped", guestSource)
	if again.Module != up.Module || !again.Cached {
		t.Errorf("re-upload of owned content: got (%q, cached=%t), want (%q, cached=true)", again.Module, again.Cached, up.Module)
	}

	// Another tenant with headroom can register the same content the
	// capped tenant was refused — ids stay global.
	other := uploadSource(t, ts, "roomy", second)
	if other.Cached {
		t.Error("roomy's first upload of the rejected content reported cached — the 403 leaked an entry")
	}
}

// TestTenantMapBounded pins tenantFor against unauthenticated header
// flooding: past MaxTenants distinct names, unknown tenants share the
// OverflowTenant aggregate instead of growing per-tenant state and
// /metrics label cardinality without bound. Configured tenants are
// never displaced.
func TestTenantMapBounded(t *testing.T) {
	ts, srv := newTestServer(t, Options{
		Config:     cage.Baseline64(),
		ConfigName: "baseline64",
		MaxTenants: 2,
		Tenants: map[string]QuotaPolicy{
			"vip": {Fuel: 5_000},
		},
	})

	const flood = 20
	for i := 0; i < flood; i++ {
		var eb errorBody
		resp := postJSON(t, ts, "/v1/invoke", fmt.Sprintf("attacker-%d", i), []byte(`{`), &eb)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("flood request %d: status %d", i, resp.StatusCode)
		}
	}
	// A configured tenant arriving after the flood still gets its own
	// state and policy.
	postJSON(t, ts, "/v1/invoke", "vip", []byte(`{`), &struct{}{})

	stats := srv.StatsSnapshot()
	if n := len(stats.Tenants); n > 4 { // 2 first-sight + overflow + vip
		t.Fatalf("flood grew the tenant map to %d entries: %v", n, sortedKeys(stats.Tenants))
	}
	ov, ok := stats.Tenants[OverflowTenant]
	if !ok {
		t.Fatal("no overflow aggregate tenant after the flood")
	}
	if ov.BadRequest != flood-2 {
		t.Errorf("overflow bad_request=%d, want %d (the flood minus the two first-sight tenants)", ov.BadRequest, flood-2)
	}
	if vip, ok := stats.Tenants["vip"]; !ok || vip.BadRequest != 1 {
		t.Errorf("configured tenant lost its own state after the flood: %+v", stats.Tenants["vip"])
	}
	if srv.tenantFor(httptestRequest("vip")).policy.Fuel != 5_000 {
		t.Error("configured tenant was handed the overflow policy")
	}
}

// httptestRequest builds a bare request carrying a tenant header.
func httptestRequest(tenant string) *http.Request {
	req, _ := http.NewRequest(http.MethodGet, "/", nil)
	req.Header.Set(TenantHeader, tenant)
	return req
}

// TestTimeoutReportsEffectiveBudget: when the request's timeout_ms is
// the binding constraint (the tenant policy has none), the 408 must
// report that budget, not the policy's zero.
func TestTimeoutReportsEffectiveBudget(t *testing.T) {
	ts, _ := newTestServer(t, Options{Config: cage.Baseline64(), ConfigName: "baseline64"})
	up := uploadSource(t, ts, "", guestSource)

	resp, _, eb := invoke(t, ts, "", InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}, TimeoutMs: 100})
	if resp.StatusCode != http.StatusRequestTimeout || eb.Error.Code != "timeout" {
		t.Fatalf("got (%d, %q), want (408, timeout)", resp.StatusCode, eb.Error.Code)
	}
	if !strings.Contains(eb.Error.Message, "100ms") {
		t.Errorf("408 message %q does not carry the request's 100ms budget", eb.Error.Message)
	}
	if strings.Contains(eb.Error.Message, "0s") {
		t.Errorf("408 message %q reports the policy's zero timeout", eb.Error.Message)
	}
}

// TestServerWideUploadCap: a tenant policy with MaxModuleBytes 0 must
// not mean an unbounded io.ReadAll — the server-wide cap backstops it.
func TestServerWideUploadCap(t *testing.T) {
	ts, _ := newTestServer(t, Options{
		Config:         cage.Baseline64(),
		ConfigName:     "baseline64",
		MaxUploadBytes: 1 << 10,
		// DefaultQuota deliberately zero: no tenant-level byte cap.
	})

	var eb errorBody
	resp := postJSON(t, ts, "/v1/modules", "", bytes.Repeat([]byte{'x'}, 1<<12), &eb)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || eb.Error.Code != "module_too_large" {
		t.Fatalf("got (%d, %q), want (413, module_too_large)", resp.StatusCode, eb.Error.Code)
	}
	if !strings.Contains(eb.Error.Message, "1024") {
		t.Errorf("413 message %q does not carry the effective limit", eb.Error.Message)
	}

	// A small module still uploads fine under the cap.
	up := uploadSource(t, ts, "", `long f(long n) { return n; }`)
	if up.Module == "" {
		t.Fatal("small upload failed under the server-wide cap")
	}
}

// TestQuotaClamping proves the policy is a ceiling the request cannot
// raise: a request asking for more fuel than the tenant's cap still
// traps at the cap.
func TestQuotaClamping(t *testing.T) {
	ts, _ := newTestServer(t, Options{
		Config:     cage.Baseline64(),
		ConfigName: "baseline64",
		Tenants: map[string]QuotaPolicy{
			"capped": {Fuel: 5_000},
		},
	})
	up := uploadSource(t, ts, "capped", guestSource)

	// Ask for 100× the cap; the spin must die at ~5k events anyway.
	resp, _, eb := invoke(t, ts, "capped", InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}, Fuel: 500_000})
	if resp.StatusCode != http.StatusUnprocessableEntity || eb.Error.Trap != "fuel exhausted" {
		t.Fatalf("got (%d, trap %q), want (422, fuel exhausted)", resp.StatusCode, eb.Error.Trap)
	}
	if !strings.Contains(eb.Error.Message, "5000") {
		t.Errorf("trap message %q does not carry the clamped budget", eb.Error.Message)
	}

	// Asking for less than the cap is honored.
	resp2, _, eb2 := invoke(t, ts, "capped", InvokeRequest{Module: up.Module, Function: "spin", Args: []uint64{0}, Fuel: 1_000})
	if resp2.StatusCode != http.StatusUnprocessableEntity || !strings.Contains(eb2.Error.Message, "1000") {
		t.Errorf("sub-cap ask: status %d message %q, want the 1000-event budget", resp2.StatusCode, eb2.Error.Message)
	}
}
