package bench

// Saturation record: the multi-tenant service benchmark's JSON shape.
// The measurement itself lives in internal/serve (serve.MeasureSaturation)
// — it drives a live cage-serve over loopback HTTP, and the serve
// package sits above the cage facade, which this package must stay
// importable from.

// SaturationPoint is one (sandbox config, concurrency) measurement.
type SaturationPoint struct {
	// Config is the cage.ConfigByName preset the server ran.
	Config string `json:"config"`
	// Concurrency is the number of in-flight clients.
	Concurrency int `json:"concurrency"`
	// Requests is how many invocations the point measured.
	Requests int `json:"requests"`
	// Errors counts failed invocations (a healthy sweep stays inside
	// quota, so this should be 0).
	Errors int `json:"errors"`
	// P50Ns/P99Ns are request-latency percentiles (wall clock, upload
	// excluded), comparable within one run of one machine only.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// ThroughputRPS is successful requests per second.
	ThroughputRPS float64 `json:"throughput_rps"`
}

// SaturationRecord is the cage-bench JSON "saturation" record: the
// repo's top-line "many tenants, one host" trajectory artifact —
// p50/p99 latency and throughput versus concurrency, per sandbox
// preset. The shape of each curve (where p99 departs from p50) is
// where that configuration's instance budget saturates.
type SaturationRecord struct {
	// Workload names the benchmark guest; N is its problem size.
	Workload string `json:"workload"`
	N        int    `json:"n"`
	// RequestsPerClient is the per-concurrency-level request multiplier.
	RequestsPerClient int `json:"requests_per_client"`
	// Points holds every (config, concurrency) measurement in sweep
	// order.
	Points []SaturationPoint `json:"points"`
}
