package minicc

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`long f(int x) { return x + 0x1F - 42; } // comment`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.String())
	}
	joined := strings.Join(kinds, " ")
	if !strings.Contains(joined, "long f ( int x )") {
		t.Errorf("unexpected token stream: %s", joined)
	}
	// Hex literal value.
	found := false
	for _, tok := range toks {
		if tok.Kind == TokIntLit && tok.Int == 0x1F {
			found = true
		}
	}
	if !found {
		t.Error("hex literal not lexed")
	}
}

func TestLexFloatAndSuffixes(t *testing.T) {
	toks, err := Lex(`3.5 1e3 2.5e-2 10L 7u`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokFloatLit || toks[0].Float != 3.5 {
		t.Errorf("3.5 lexed as %v", toks[0])
	}
	if toks[1].Kind != TokFloatLit || toks[1].Float != 1000 {
		t.Errorf("1e3 lexed as %v", toks[1])
	}
	if toks[3].Kind != TokIntLit || toks[3].Int != 10 {
		t.Errorf("10L lexed as %v", toks[3])
	}
}

func TestLexStringsAndChars(t *testing.T) {
	toks, err := Lex(`"hi\n" 'A' '\0'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokStrLit || toks[0].Text != "hi\n" {
		t.Errorf("string lexed as %q", toks[0].Text)
	}
	if toks[1].Kind != TokCharLit || toks[1].Int != 'A' {
		t.Errorf("char lexed as %v", toks[1].Int)
	}
	if toks[2].Int != 0 {
		t.Errorf("nul char lexed as %v", toks[2].Int)
	}
}

func TestLexBlockComment(t *testing.T) {
	toks, err := Lex("a /* stuff \n more */ b")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 { // a, b, EOF
		t.Errorf("got %d tokens", len(toks))
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `'a`, "/* open", "`"} {
		if _, err := Lex(src); err == nil {
			t.Errorf("Lex(%q) accepted", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`long f( { return 0; }`,
		`long f(void) { return 0 }`,
		`long f(void) { if (1 { return 0; } return 1; }`,
		`struct X { long a }; long f(void) { return 0; }`,
		`long f(void) { int x[n]; return 0; }`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted invalid program: %s", src)
		}
	}
}

func TestSemaErrors(t *testing.T) {
	bad := []string{
		`long f(void) { return undeclared; }`,
		`long f(void) { long x = 1; return x(); }`,
		`long f(void) { double d = 1.0; return d[0]; }`,
		`struct P { long a; }; long f(void) { struct P p; return p.nope; }`,
		`long f(long a) { return f(a, a); }`,
		`void v(void) { } long f(void) { return v(); }`,
		`long f(void) { 5 = 6; return 0; }`,
		`long g(void) { return 1; } long g(void) { return 2; }`,
	}
	for _, src := range bad {
		file, err := Parse(src)
		if err != nil {
			continue // parse already rejected, also fine
		}
		if _, err := Analyze(file, Layout64); err == nil {
			t.Errorf("Analyze accepted invalid program: %s", src)
		}
	}
}

func TestStructLayout(t *testing.T) {
	src := `
struct Mixed { char c; double d; int i; char c2; };
long f(void) { return sizeof(struct Mixed); }`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(file, Layout64); err != nil {
		t.Fatal(err)
	}
	si := file.Structs[0]
	// c at 0, d at 8, i at 16, c2 at 20, size padded to 24.
	offsets := map[string]int64{"c": 0, "d": 8, "i": 16, "c2": 20}
	for _, f := range si.Fields {
		if offsets[f.Name] != f.Offset {
			t.Errorf("field %s at offset %d, want %d", f.Name, f.Offset, offsets[f.Name])
		}
	}
	if si.Size != 24 {
		t.Errorf("struct size %d, want 24", si.Size)
	}
	if si.Align != 8 {
		t.Errorf("struct align %d, want 8", si.Align)
	}
}

func TestLayout32vs64(t *testing.T) {
	ptr := PtrTo(TypeChar)
	if Layout64.Size(ptr) != 8 || Layout32.Size(ptr) != 4 {
		t.Error("pointer sizes wrong")
	}
	if Layout64.Size(TypeLong) != 8 || Layout32.Size(TypeLong) != 4 {
		t.Error("long sizes wrong (ILP32 expected on wasm32)")
	}
	if Layout32.Size(TypeDouble) != 8 {
		t.Error("double must stay 8 bytes on wasm32")
	}
	arr := ArrayOf(TypeInt, 10)
	if Layout64.Size(arr) != 40 {
		t.Error("array size wrong")
	}
}

func TestCommonArith(t *testing.T) {
	if CommonArith(TypeInt, TypeDouble) != TypeDouble {
		t.Error("int+double must widen to double")
	}
	if CommonArith(TypeChar, TypeChar).Kind != KInt {
		t.Error("char+char must promote to int")
	}
	if CommonArith(TypeLong, TypeInt) != TypeLong {
		t.Error("long+int must widen to long")
	}
}

func TestTypeString(t *testing.T) {
	cases := map[string]*Type{
		"long":         TypeLong,
		"char*":        PtrTo(TypeChar),
		"double[4]":    ArrayOf(TypeDouble, 4),
		"unsigned int": TypeUInt,
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestAnalysisSizeofDoesNotEscape(t *testing.T) {
	src := `long f(void) { long buf[4]; buf[0] = 1; return sizeof(buf) + buf[0]; }`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Analyze(file, Layout64)
	if err != nil {
		t.Fatal(err)
	}
	sym := prog.File.Funcs[0].StackAllocs[0]
	if sym.Instrument {
		t.Error("sizeof-only + const-indexed array was instrumented")
	}
}

func TestAnalysisStructMemberUseIsSafe(t *testing.T) {
	src := `
struct P { long a; long b; };
long f(void) { struct P p; p.a = 1; p.b = 2; return p.a + p.b; }`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Analyze(file, Layout64)
	if err != nil {
		t.Fatal(err)
	}
	sym := prog.File.Funcs[0].StackAllocs[0]
	if sym.Instrument {
		t.Error("member-only struct access was instrumented")
	}
}

func TestAnalysisAddressTakenScalarEscapes(t *testing.T) {
	src := `
extern void sink(long* p);
long f(void) { long x = 1; sink(&x); return x; }`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Analyze(file, Layout64)
	if err != nil {
		t.Fatal(err)
	}
	fn := prog.File.Funcs[0]
	if len(fn.StackAllocs) != 1 || !fn.StackAllocs[0].Instrument {
		t.Error("address-taken scalar must be an instrumented allocation")
	}
}

func TestFunctionPointerDeclaration(t *testing.T) {
	src := `
long add(long a, long b) { return a + b; }
long f(void) {
    long (*op)(long, long) = add;
    return op(1, 2);
}`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(file, Layout64); err != nil {
		t.Fatal(err)
	}
}

func TestBuiltinsResolve(t *testing.T) {
	src := `
long f(void) {
    char* p = __builtin_segment_new((char*)1024, 32);
    __builtin_segment_free(p, 32);
    char* q = __builtin_pointer_sign((char*)8);
    q = __builtin_pointer_auth(q);
    return (long)q;
}`
	file, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(file, Layout64); err != nil {
		t.Fatalf("builtins failed to resolve: %v", err)
	}
}
